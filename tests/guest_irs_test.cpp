// Tests for the IRS mechanism end to end: SA delivery, context switcher,
// migrator target selection, wake-up fix, and the hypervisor-side SA
// sender (pending flag, ack delay, hard cap).
#include <gtest/gtest.h>

#include "tests/helpers.h"

namespace irs {
namespace {

using test::ScriptedBehavior;
using test::TestWorkload;

/// Standard IRS topology: fg VM (4 vCPUs, pinned 0-3, IRS-capable) plus a
/// single-vCPU hog VM pinned to pCPU 0.
struct IrsWorld {
  explicit IrsWorld(core::Strategy strategy, TestWorkload::Setup fg_setup,
                    std::uint64_t seed = 5) {
    core::WorldConfig wc;
    wc.n_pcpus = 4;
    wc.strategy = strategy;
    wc.seed = seed;
    wc.trace_capacity = 100000;
    world = std::make_unique<core::World>(wc);
    hv::VmConfig fg_cfg;
    fg_cfg.name = "fg";
    fg_cfg.n_vcpus = 4;
    fg_cfg.pin_map = {0, 1, 2, 3};
    fg = world->add_vm(fg_cfg, /*irs_capable=*/true);
    world->attach(fg, std::make_unique<TestWorkload>("fg", std::move(fg_setup)));
    hv::VmConfig bg_cfg;
    bg_cfg.name = "bg";
    bg_cfg.n_vcpus = 1;
    bg_cfg.pin_map = {0};
    bg = world->add_vm(bg_cfg, false);
    world->attach(bg, std::make_unique<TestWorkload>(
                          "bg", [](guest::GuestKernel& k, TestWorkload& tw) {
                            tw.add_task(k, "hog", test::hog_behavior(), 0);
                          }));
    world->start();
  }

  std::unique_ptr<core::World> world;
  hv::VmId fg = 0;
  hv::VmId bg = 0;
};

TestWorkload::Setup one_hog_per_cpu(int n = 4) {
  return [n](guest::GuestKernel& k, TestWorkload& tw) {
    for (int i = 0; i < n; ++i) {
      tw.add_task(k, "w" + std::to_string(i), test::hog_behavior(),
                  i % k.n_cpus());
    }
  };
}

TEST(IrsMechanism, SaSentOnInvoluntaryPreemptionOnly) {
  IrsWorld iw(core::Strategy::kIrs, one_hog_per_cpu());
  iw.world->run_for(sim::seconds(1));
  const auto& st = iw.world->host().strategy_stats();
  // vCPU0 contends with the hog: rotations every ~30-60 ms -> tens of SAs.
  EXPECT_GE(st.sa_sent, 10u);
  EXPECT_LE(st.sa_sent, 100u);
  // Every SA acknowledged (well-behaved guest), none force-capped.
  EXPECT_EQ(st.sa_acked, st.sa_sent);
  EXPECT_EQ(st.sa_forced, 0u);
}

TEST(IrsMechanism, NoSaUnderBaseline) {
  IrsWorld iw(core::Strategy::kBaseline, one_hog_per_cpu());
  iw.world->run_for(sim::seconds(1));
  EXPECT_EQ(iw.world->host().strategy_stats().sa_sent, 0u);
  EXPECT_EQ(iw.world->kernel(iw.fg).stats().sa_received, 0u);
}

TEST(IrsMechanism, BackgroundVmNeverReceivesSa) {
  IrsWorld iw(core::Strategy::kIrs, one_hog_per_cpu());
  iw.world->run_for(sim::seconds(1));
  EXPECT_GT(iw.world->kernel(iw.fg).stats().sa_received, 0u);
  // bg is not SA-registered (paper §5.4 footnote).
  EXPECT_EQ(iw.world->kernel(iw.bg).stats().sa_received, 0u);
  EXPECT_FALSE(iw.world->kernel(iw.bg).sa_registered());
}

TEST(IrsMechanism, SaAckDelayMatchesPaperRange) {
  IrsWorld iw(core::Strategy::kIrs, one_hog_per_cpu());
  iw.world->run_for(sim::seconds(2));
  const auto& st = iw.world->host().strategy_stats();
  ASSERT_GT(st.sa_acked, 0u);
  const double avg_us =
      sim::to_us(st.sa_delay_total / static_cast<sim::Duration>(st.sa_acked));
  // Paper §3.1: 20-26 us processing (handler cost jitter +- 15% plus the
  // guest context switch).
  EXPECT_GE(avg_us, 15.0);
  EXPECT_LE(avg_us, 30.0);
}

TEST(IrsMechanism, ContextSwitcherDeschedulesAndMigrates) {
  IrsWorld iw(core::Strategy::kIrs, one_hog_per_cpu());
  iw.world->run_for(sim::seconds(1));
  const auto& gs = iw.world->kernel(iw.fg).stats();
  EXPECT_GT(gs.irs_migrations, 0u);
  // Replies split between block (empty rq) and yield.
  EXPECT_EQ(gs.sa_replied_block + gs.sa_replied_yield, gs.sa_received);
  // Hogs never block, each vCPU has exactly one task, so the context
  // switcher always empties the runqueue -> SCHEDOP_block.
  EXPECT_GT(gs.sa_replied_block, 0u);
}

TEST(IrsMechanism, ContextSwitcherRepliesYieldWhenQueueNonEmpty) {
  // Eight hogs on four vCPUs: every queue keeps a spare task, so after the
  // context switcher deschedules the current one another remains -> yield.
  IrsWorld iw(core::Strategy::kIrs, one_hog_per_cpu(8));
  iw.world->run_for(sim::seconds(1));
  EXPECT_GT(iw.world->kernel(iw.fg).stats().sa_replied_yield, 0u);
}

TEST(IrsMechanism, MigratorPrefersIdleSibling) {
  // Only one fg task: vCPUs 1-3 are idle (blocked); Algorithm 2 must pick
  // an idle one.
  IrsWorld iw(core::Strategy::kIrs,
              [](guest::GuestKernel& k, TestWorkload& tw) {
                tw.add_task(k, "solo", test::hog_behavior(), 0);
              });
  iw.world->run_for(sim::seconds(1));
  const auto& ms = iw.world->kernel(iw.fg).migrator().stats();
  ASSERT_GT(ms.requests, 0u);
  // The target is an idle sibling — either hypervisor-blocked ("IDLE" in
  // Algorithm 2) or awake in its idle loop (counted as running); never the
  // source-fallback path, which would strand the task behind the hog.
  EXPECT_GT(ms.to_idle + ms.to_running, 0u);
  EXPECT_EQ(ms.fallback_src, 0u);
}

TEST(IrsMechanism, MigratorNeverPicksPreemptedSibling) {
  // All four vCPUs contended is impossible here (single hog), but we can
  // verify via unit call: target for a migration from vCPU0 is never 0 and
  // never a runnable (preempted) vCPU.
  IrsWorld iw(core::Strategy::kIrs, one_hog_per_cpu());
  iw.world->run_for(sim::milliseconds(200));
  auto& k = iw.world->kernel(iw.fg);
  const int target = k.migrator().pick_target(0);
  EXPECT_NE(target, 0);
  const auto rs = k.hypercalls().vcpu_runstate(target);
  EXPECT_NE(rs.state, hv::VcpuState::kRunnable);
}

TEST(IrsMechanism, SoloTaskKeepsNearFullThroughputUnderIrs) {
  // One task, one interfered vCPU, three idle vCPUs: IRS should migrate
  // the task so it runs at nearly full speed despite the hog.
  IrsWorld iw(core::Strategy::kIrs,
              [](guest::GuestKernel& k, TestWorkload& tw) {
                tw.add_task(k, "solo", test::hog_behavior(), 0);
              });
  iw.world->run_for(sim::seconds(2));
  const auto done =
      iw.world->workload(iw.fg).tasks()[0]->stats.compute_done;
  EXPECT_GT(sim::to_sec(done), 1.75);
}

TEST(IrsMechanism, BaselineSoloTaskStuckAtHalfSpeed) {
  IrsWorld iw(core::Strategy::kBaseline,
              [](guest::GuestKernel& k, TestWorkload& tw) {
                tw.add_task(k, "solo", test::hog_behavior(), 0);
              });
  iw.world->run_for(sim::seconds(2));
  const auto done =
      iw.world->workload(iw.fg).tasks()[0]->stats.compute_done;
  // The guest cannot migrate a "running" task: ~50% of pCPU 0 plus
  // occasional newidle rescues after wake-ups — well below the IRS level.
  EXPECT_LT(sim::to_sec(done), 1.6);
}

TEST(IrsMechanism, TaggedTaskClearedOnBlock) {
  IrsWorld iw(core::Strategy::kIrs,
              [](guest::GuestKernel& k, TestWorkload& tw) {
                tw.add_task(
                    k, "blocky",
                    std::make_unique<ScriptedBehavior>(
                        std::vector<guest::Action>{
                            guest::Action::compute(sim::milliseconds(40)),
                            guest::Action::sleep(sim::milliseconds(1)),
                        },
                        /*loop=*/true),
                    0);
              });
  iw.world->run_for(sim::seconds(1));
  // The task blocks regularly, so it must not stay tagged forever.
  EXPECT_FALSE(iw.world->workload(iw.fg).tasks()[0]->migrating_tag);
  EXPECT_GT(iw.world->kernel(iw.fg).stats().irs_migrations, 0u);
}

TEST(IrsMechanism, SaPendingPreventsDuplicateNotifications) {
  IrsWorld iw(core::Strategy::kIrs, one_hog_per_cpu());
  iw.world->run_for(sim::seconds(1));
  const auto& st = iw.world->host().strategy_stats();
  // acked + forced == sent means no SA was ever outstanding twice.
  EXPECT_EQ(st.sa_acked + st.sa_forced, st.sa_sent);
}

TEST(IrsMechanism, HardCapForcesPreemptionForSlowGuest) {
  // Configure an absurdly small cap so every SA is force-completed.
  core::WorldConfig wc;
  wc.n_pcpus = 1;
  wc.strategy = core::Strategy::kIrs;
  wc.hv.sa_ack_cap = sim::microseconds(1);  // below the ~20 us handler
  wc.seed = 7;
  core::World w(wc);
  hv::VmConfig fg_cfg;
  fg_cfg.name = "fg";
  fg_cfg.n_vcpus = 1;
  fg_cfg.pin_map = {0};
  const auto fg = w.add_vm(fg_cfg, true);
  w.attach(fg, std::make_unique<TestWorkload>(
                   "fg", [](guest::GuestKernel& k, TestWorkload& tw) {
                     tw.add_task(k, "w", test::hog_behavior(), 0);
                   }));
  hv::VmConfig bg_cfg = fg_cfg;
  bg_cfg.name = "bg";
  const auto bg = w.add_vm(bg_cfg, false);
  w.attach(bg, std::make_unique<TestWorkload>(
                   "bg", [](guest::GuestKernel& k, TestWorkload& tw) {
                     tw.add_task(k, "hog", test::hog_behavior(), 0);
                   }));
  w.start();
  w.run_for(sim::seconds(1));
  const auto& st = w.host().strategy_stats();
  EXPECT_GT(st.sa_forced, 0u);
  // Forced preemptions still keep the system fair: both VMs ~50%.
  const auto fg_time = w.host().vm(fg).vcpu(0).time_running(w.engine().now());
  EXPECT_NEAR(sim::to_sec(fg_time), 0.5, 0.1);
}

TEST(IrsMechanism, SaDelayDoesNotBreakFairness) {
  IrsWorld iw(core::Strategy::kIrs, one_hog_per_cpu());
  iw.world->run_for(sim::seconds(4));
  // Paper §5.4: the fg VM must never EXCEED its fair share; the background
  // VM may gain a little (+5-6% speedup in the paper) because IRS
  // occasionally vacates the contended vCPU.
  const auto now = iw.world->engine().now();
  const auto fg0 = iw.world->host().vm(iw.fg).vcpu(0).time_running(now);
  const auto hog = iw.world->host().vm(iw.bg).vcpu(0).time_running(now);
  EXPECT_LE(sim::to_sec(fg0), 2.1);               // no more than fair share
  EXPECT_GE(sim::to_sec(fg0), 1.2);               // but not starved either
  EXPECT_GE(sim::to_sec(hog), 1.9);               // bg keeps >= fair share
  EXPECT_NEAR(sim::to_sec(fg0 + hog), 4.0, 0.05);  // pCPU0 work-conserving
}

TEST(IrsMechanism, WakeupFixPreemptsTaggedTask) {
  // fg: a mutex pair on vCPU1 plus a migrated-task generator on vCPU0.
  // We verify the counter that tracks Fig.4-style tagged preemptions.
  IrsWorld iw(core::Strategy::kIrs,
              [](guest::GuestKernel& k, TestWorkload& tw) {
                // w0: pure compute on the contended vCPU0; it never blocks,
                // so its IRS tag persists after each forced migration.
                tw.add_task(k, "w0", test::hog_behavior(), 0);
                // w1: compute/sleep cycle on vCPU1 — the Fig. 4 "waiter".
                // When vCPU0 is preempted while w1 sleeps, the migrator
                // puts tagged w0 on idle vCPU1; w1's next wake-up must then
                // preempt it in place instead of ping-ponging away.
                tw.add_task(
                    k, "w1",
                    std::make_unique<ScriptedBehavior>(
                        std::vector<guest::Action>{
                            guest::Action::compute(sim::microseconds(500)),
                            guest::Action::sleep(sim::microseconds(500)),
                        },
                        /*loop=*/true),
                    1);
                // Busy hogs on vCPUs 2-3 keep them unattractive, so the
                // migrator repeatedly lands on vCPU1 and the balancer keeps
                // refilling vCPU0 (triggering fresh SA cycles).
                tw.add_task(k, "w2", test::hog_behavior(), 2);
                tw.add_task(k, "w3", test::hog_behavior(), 3);
              });
  iw.world->run_for(sim::seconds(3));
  EXPECT_GT(iw.world->kernel(iw.fg).stats().tag_preemptions, 0u);
}

TEST(IrsMechanism, WakeupFixDisabledHasNoTagPreemptions) {
  core::WorldConfig wc;
  wc.n_pcpus = 4;
  wc.strategy = core::Strategy::kIrs;
  wc.seed = 5;
  core::World w(wc);
  hv::VmConfig fg_cfg;
  fg_cfg.name = "fg";
  fg_cfg.n_vcpus = 4;
  fg_cfg.pin_map = {0, 1, 2, 3};
  guest::GuestConfig gc;
  gc.irs_wakeup_fix = false;  // ablation knob
  const auto fg = w.add_vm(fg_cfg, true, gc);
  w.attach(fg, std::make_unique<TestWorkload>("fg", one_hog_per_cpu()));
  hv::VmConfig bg_cfg;
  bg_cfg.name = "bg";
  bg_cfg.n_vcpus = 1;
  bg_cfg.pin_map = {0};
  const auto bg = w.add_vm(bg_cfg, false);
  w.attach(bg, std::make_unique<TestWorkload>(
                   "bg", [](guest::GuestKernel& k, TestWorkload& tw) {
                     tw.add_task(k, "hog", test::hog_behavior(), 0);
                   }));
  w.start();
  w.run_for(sim::seconds(1));
  EXPECT_EQ(w.kernel(fg).stats().tag_preemptions, 0u);
}

}  // namespace
}  // namespace irs
