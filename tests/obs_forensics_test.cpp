// Per-request causal forensics: exact latency decomposition, passivity,
// ring-wrap truncation accounting, JSON round-trips, fold determinism, and
// the end-to-end root-cause story (LHP dominates Baseline violations under
// hogs; IRS shifts the mass back to run/ready-wait).
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "src/exp/report.h"
#include "src/exp/runner.h"
#include "src/exp/sweep.h"
#include "src/obs/forensics.h"
#include "src/obs/json.h"
#include "src/obs/json_reader.h"
#include "src/sim/rng.h"

namespace {

using namespace irs;

exp::ScenarioConfig forensics_cfg(const std::string& fg,
                                  core::Strategy strategy) {
  exp::ScenarioConfig cfg;
  cfg.fg = fg;
  cfg.bg = "hog";
  cfg.n_inter = 2;
  cfg.strategy = strategy;
  cfg.server_duration = sim::milliseconds(400);
  cfg.forensics = true;
  return cfg;
}

unsigned __int128 sum128(const obs::LatencyHistogram& h) {
  return (static_cast<unsigned __int128>(h.sum_hi()) << 64) | h.sum_lo();
}

// --- the exact-sum contract ------------------------------------------------

TEST(ForensicsEndToEnd, SegmentsSumExactlyToEndToEndLatency) {
  // For every (workload, strategy) arm: each cause histogram records one
  // value per completed span, and the per-cause sums add up bit-exactly to
  // the total latency the SLO tracker measured for the same requests. The
  // `untracked` remainder makes this exact by construction; this test
  // proves no segment is double-charged or leaked.
  for (const char* fg : {"specjbb", "ab"}) {
    for (const auto strategy :
         {core::Strategy::kBaseline, core::Strategy::kIrs}) {
      const exp::RunResult r = exp::run_scenario(forensics_cfg(fg, strategy));
      ASSERT_FALSE(r.forensics.empty()) << fg;
      ASSERT_EQ(r.trace_dropped, 0u) << fg << ": ring wrapped; enlarge";
      ASSERT_EQ(r.forensics.classes.size(), r.slo.classes.size());
      for (std::size_t i = 0; i < r.forensics.classes.size(); ++i) {
        const obs::ForensicsClassResult& c = r.forensics.classes[i];
        const obs::SloClassResult& s = r.slo.classes[i];
        EXPECT_EQ(c.name, s.name);
        EXPECT_EQ(c.truncated, 0u);
        EXPECT_EQ(c.spans, s.total.count()) << fg << "/" << c.name;
        unsigned __int128 causes_sum = 0;
        for (int k = 0; k < obs::kNumCauses; ++k) {
          EXPECT_EQ(c.causes[k].count(), c.spans)
              << fg << "/" << c.name << " cause "
              << obs::cause_name(static_cast<obs::Cause>(k));
          causes_sum += sum128(c.causes[k]);
        }
        const unsigned __int128 latency_sum = sum128(s.total);
        EXPECT_EQ(static_cast<std::uint64_t>(causes_sum),
                  static_cast<std::uint64_t>(latency_sum))
            << fg << "/" << c.name;
        EXPECT_EQ(static_cast<std::uint64_t>(causes_sum >> 64),
                  static_cast<std::uint64_t>(latency_sum >> 64))
            << fg << "/" << c.name;
        // Violating-window rows only ever cover violating requests.
        for (const obs::ForensicsWindow& w : c.windows) {
          EXPECT_GT(w.violations, 0u);
          EXPECT_GE(w.requests, w.violations);
        }
      }
    }
  }
}

// --- passivity -------------------------------------------------------------

TEST(ForensicsEndToEnd, InstrumentationIsPassiveAndDeterministic) {
  // Same seed with forensics off and on: every scheduling-visible field is
  // bit-identical (the request brackets and the analyzer only change trace
  // ring contents and the forensics fields). Two on-runs agree exactly.
  exp::ScenarioConfig off_cfg = forensics_cfg("specjbb", core::Strategy::kIrs);
  off_cfg.forensics = false;
  const exp::RunResult off = exp::run_scenario(off_cfg);
  const exp::RunResult on1 =
      exp::run_scenario(forensics_cfg("specjbb", core::Strategy::kIrs));
  const exp::RunResult on2 =
      exp::run_scenario(forensics_cfg("specjbb", core::Strategy::kIrs));

  EXPECT_TRUE(off.forensics.empty());
  EXPECT_EQ(off.forensics_digest, 0u);
  ASSERT_FALSE(on1.forensics.empty());
  EXPECT_NE(on1.forensics_digest, 0u);
  EXPECT_TRUE(on1.forensics == on2.forensics);
  EXPECT_EQ(on1.forensics_digest, on2.forensics_digest);

  // Mask the fields forensics is *allowed* to change (trace telemetry and
  // its own block), then require full bit-identity.
  exp::RunResult a = off;
  exp::RunResult b = on1;
  a.trace_dropped = b.trace_dropped = 0;
  a.trace_total_recorded = b.trace_total_recorded = 0;
  b.forensics = a.forensics;
  b.forensics_digest = a.forensics_digest;
  EXPECT_TRUE(exp::results_identical(a, b));
}

// --- determinism across engine backends, batch sizes, thread counts -------

TEST(ForensicsEndToEnd, BitIdenticalAcrossQueueBackendsBatchesAndThreads) {
  // The forensics block (and the whole result line) must be a pure function
  // of (config, seed): the event-queue backend, the trace staging batch
  // size, and the sweep pool's thread count are implementation details that
  // may not leak into the JSON.
  std::vector<exp::ScenarioConfig> grid;
  for (std::uint64_t seed : {1ull, 7ull}) {
    exp::ScenarioConfig cfg = forensics_cfg("specjbb", core::Strategy::kIrs);
    cfg.server_duration = sim::milliseconds(200);
    cfg.seed = seed;
    grid.push_back(cfg);
  }

  auto render = [](const std::vector<exp::RunResult>& rs) {
    std::string s;
    for (const exp::RunResult& r : rs) s += exp::result_json(r) + "\n";
    return s;
  };

  const std::string reference = render(exp::run_sweep(grid, /*n_threads=*/1));
  EXPECT_NE(reference.find("\"forensics\""), std::string::npos);

  for (const auto queue :
       {sim::QueueKind::kBinaryHeap, sim::QueueKind::kQuadHeap,
        sim::QueueKind::kHybridWheel}) {
    for (const std::size_t batch : {std::size_t{1}, std::size_t{64}}) {
      auto g = grid;
      for (auto& cfg : g) {
        cfg.queue = queue;
        cfg.trace_batch = batch;
      }
      for (const int threads : {1, 4}) {
        EXPECT_EQ(render(exp::run_sweep(g, threads)), reference)
            << "queue " << static_cast<int>(queue) << " batch " << batch
            << " threads " << threads;
      }
    }
  }
}

// --- ring-wrap truncation --------------------------------------------------

TEST(ForensicsTruncation, WrappedSpansAreReportedNeverCharged) {
  // Fuzz the ring capacity: spans live in the side log and never drop, but
  // when the wrap eats the scheduler evidence under a span (it began before
  // the contiguous retained tail), the span must be counted in `truncated`
  // — and never charged into any cause histogram (every cause count stays
  // equal to `spans`). Same capacity twice must reproduce the same block
  // bit-for-bit.
  sim::Rng rng(2026);
  bool saw_truncation = false;
  for (int iter = 0; iter < 5; ++iter) {
    // The 200 ms scenario below records ~3.6k trace records, so any
    // capacity in [128, 1152) is guaranteed to wrap the ring.
    const std::size_t capacity = 128 + rng.next_below(1024);
    exp::ScenarioConfig cfg = forensics_cfg("specjbb", core::Strategy::kIrs);
    cfg.server_duration = sim::milliseconds(200);
    cfg.trace_capacity = capacity;
    const exp::RunResult r1 = exp::run_scenario(cfg);
    const exp::RunResult r2 = exp::run_scenario(cfg);
    ASSERT_TRUE(r1.forensics == r2.forensics) << "capacity " << capacity;
    ASSERT_EQ(r1.forensics_digest, r2.forensics_digest);
    ASSERT_GT(r1.trace_dropped, 0u) << "capacity " << capacity
                                    << " did not wrap; shrink the fuzz range";
    EXPECT_GE(r1.forensics.head_truncated_at, 0) << "capacity " << capacity;
    std::uint64_t truncated = 0;
    for (const obs::ForensicsClassResult& c : r1.forensics.classes) {
      truncated += c.truncated;
      for (int k = 0; k < obs::kNumCauses; ++k) {
        EXPECT_EQ(c.causes[k].count(), c.spans)
            << "capacity " << capacity << " cause "
            << obs::cause_name(static_cast<obs::Cause>(k));
      }
      // Retained spans can never exceed what the SLO tracker (which does
      // not ride the ring) saw complete.
      ASSERT_FALSE(r1.slo.empty());
      const obs::SloClassResult* s = nullptr;
      for (const obs::SloClassResult& sc : r1.slo.classes) {
        if (sc.name == c.name) s = &sc;
      }
      ASSERT_NE(s, nullptr);
      EXPECT_LE(c.spans + c.truncated, s->total.count());
    }
    saw_truncation = saw_truncation || truncated > 0;
  }
  // Across the whole fuzz range at least one capacity must actually have
  // cut a span in half — otherwise the test proves nothing.
  EXPECT_TRUE(saw_truncation);
}

// --- serialization ---------------------------------------------------------

TEST(ForensicsJson, RoundTripsBitIdentically) {
  const exp::RunResult r =
      exp::run_scenario(forensics_cfg("ab", core::Strategy::kBaseline));
  ASSERT_FALSE(r.forensics.empty());

  obs::JsonWriter w;
  obs::forensics_json(w, r.forensics);
  const std::string text = w.str();

  obs::JsonReader reader;
  obs::JsonValue v;
  ASSERT_TRUE(reader.parse(text, &v)) << reader.error();
  obs::ForensicsResult parsed;
  std::string err;
  ASSERT_TRUE(obs::forensics_from_value(v, &parsed, &err)) << err;
  EXPECT_TRUE(parsed == r.forensics);
  EXPECT_EQ(parsed.digest(), r.forensics.digest());

  obs::JsonWriter w2;
  obs::forensics_json(w2, parsed);
  EXPECT_EQ(w2.str(), text);  // byte-identical re-serialization
}

TEST(ForensicsJson, ResultJsonCarriesTheBlockAndRoundTrips) {
  const exp::RunResult r =
      exp::run_scenario(forensics_cfg("specjbb", core::Strategy::kBaseline));
  const std::string json = exp::result_json(r);
  EXPECT_NE(json.find("\"forensics\":"), std::string::npos);
  EXPECT_NE(json.find("\"forensics_digest\":"), std::string::npos);
  exp::RunResult parsed;
  std::string err;
  ASSERT_TRUE(exp::result_from_json(json, &parsed, &err)) << err;
  EXPECT_TRUE(parsed.forensics == r.forensics);
  EXPECT_TRUE(exp::results_identical(parsed, r));
  EXPECT_EQ(exp::result_json(parsed), json);

  // Disabled runs carry no block (and old captures parse fine without one —
  // result_from_value treats both fields as optional).
  exp::ScenarioConfig off = forensics_cfg("specjbb", core::Strategy::kBaseline);
  off.forensics = false;
  const exp::RunResult plain = exp::run_scenario(off);
  EXPECT_EQ(exp::result_json(plain).find("\"forensics\":"),
            std::string::npos);
}

TEST(ForensicsJson, RejectsMalformedFields) {
  obs::JsonReader reader;
  obs::JsonValue v;
  obs::ForensicsResult out;
  std::string err;
  ASSERT_TRUE(reader.parse("{\"classes\":[]}", &v));
  EXPECT_FALSE(obs::forensics_from_value(v, &out, &err));  // no window_ns
  ASSERT_TRUE(reader.parse(
      "{\"window_ns\":30000000,\"head_truncated_at\":-1,"
      "\"classes\":[{\"name\":\"x\"}]}",
      &v));
  EXPECT_FALSE(obs::forensics_from_value(v, &out, &err));
  EXPECT_FALSE(err.empty());
}

// --- sweep fold ------------------------------------------------------------

TEST(ForensicsFold, FoldIsOrderIndependentAndExact) {
  std::vector<exp::RunResult> runs;
  for (std::uint64_t seed : {1ull, 5ull, 9ull}) {
    exp::ScenarioConfig cfg = forensics_cfg("specjbb", core::Strategy::kIrs);
    cfg.server_duration = sim::milliseconds(200);
    cfg.seed = seed;
    runs.push_back(exp::run_scenario(cfg));
  }
  obs::ForensicsResult fwd;
  for (const exp::RunResult& r : runs) obs::fold_forensics(fwd, r.forensics);
  obs::ForensicsResult rev;
  for (auto it = runs.rbegin(); it != runs.rend(); ++it) {
    obs::fold_forensics(rev, it->forensics);
  }
  EXPECT_TRUE(fwd == rev);
  EXPECT_EQ(fwd.digest(), rev.digest());

  // The fold preserves the exact-sum contract: folded cause sums equal the
  // sum of the per-run cause sums.
  unsigned __int128 folded = 0;
  unsigned __int128 serial = 0;
  for (const obs::ForensicsClassResult& c : fwd.classes) {
    for (int k = 0; k < obs::kNumCauses; ++k) folded += sum128(c.causes[k]);
  }
  for (const exp::RunResult& r : runs) {
    for (const obs::ForensicsClassResult& c : r.forensics.classes) {
      for (int k = 0; k < obs::kNumCauses; ++k) serial += sum128(c.causes[k]);
    }
  }
  EXPECT_EQ(static_cast<std::uint64_t>(folded),
            static_cast<std::uint64_t>(serial));
  EXPECT_EQ(static_cast<std::uint64_t>(folded >> 64),
            static_cast<std::uint64_t>(serial >> 64));
}

// --- the root-cause story --------------------------------------------------

TEST(ForensicsRootCause, LhpDominatesBaselineViolationsIrsShiftsToRun) {
  // Fixed-seed fig08-shaped scenario with the SPECjbb critical section
  // cranked: every transaction holds the shared structure for 300 µs under
  // a ticket *spinlock*, so waiters burn CPU instead of yielding their
  // vCPU — the kernel-spinlock shape the paper's LHP/LWP pathology needs
  // (blocking-mutex waiters idle their vCPU, which turns holder handoff
  // into plain runqueue wait). Under Baseline, the forensic verdict for
  // SLO-violating windows must rank LHP/LWP as the dominant cause; under
  // IRS the lock-preemption causes must collapse and the latency mass
  // shift to run/ready-wait.
  auto arm = [](core::Strategy strategy) {
    exp::ScenarioConfig cfg;
    cfg.fg = "specjbb";
    cfg.bg = "hog";
    cfg.n_inter = 4;
    cfg.strategy = strategy;
    cfg.server_duration = sim::seconds(1);
    cfg.forensics = true;
    cfg.jbb_cs_len = sim::microseconds(300);
    cfg.jbb_cs_every = 1;
    cfg.jbb_cs_spin = true;
    cfg.seed = 1;
    return exp::run_scenario(cfg);
  };
  const exp::RunResult base = arm(core::Strategy::kBaseline);
  const exp::RunResult irs = arm(core::Strategy::kIrs);
  ASSERT_FALSE(base.forensics.empty());
  ASSERT_FALSE(irs.forensics.empty());
  const obs::ForensicsClassResult& bc = base.forensics.classes.front();
  const obs::ForensicsClassResult& ic = irs.forensics.classes.front();
  ASSERT_FALSE(bc.windows.empty()) << "Baseline has no violating windows";

  // Rank causes over Baseline's violating windows: lock-holder/waiter
  // preemption must explain more of the violating latency than any other
  // single cause.
  sim::Duration win[obs::kNumCauses] = {};
  for (const obs::ForensicsWindow& w : bc.windows) {
    for (int k = 0; k < obs::kNumCauses; ++k) win[k] += w.causes[k];
  }
  const sim::Duration lock_stall =
      win[static_cast<int>(obs::Cause::kLhp)] +
      win[static_cast<int>(obs::Cause::kLwp)];
  for (int k = 0; k < obs::kNumCauses; ++k) {
    const auto cause = static_cast<obs::Cause>(k);
    if (cause == obs::Cause::kLhp || cause == obs::Cause::kLwp) continue;
    EXPECT_GE(lock_stall, win[k])
        << "Baseline violating windows not LHP/LWP-dominated (lost to "
        << obs::cause_name(cause) << ")";
  }
  EXPECT_GT(lock_stall, 0);

  // IRS retires the lock-preemption causes (the SA protocol keeps lock
  // holders running or migrates waiters off frozen vCPUs)...
  EXPECT_EQ(ic.cause_total(obs::Cause::kLhp), 0);
  EXPECT_EQ(ic.cause_total(obs::Cause::kLwp), 0);
  // ...and the share of latency spent actually computing (run + guest-side
  // ready-wait) rises.
  auto share = [](const obs::ForensicsClassResult& c, obs::Cause x,
                  obs::Cause y) {
    std::int64_t grand = 0;
    for (int k = 0; k < obs::kNumCauses; ++k) {
      grand += c.cause_total(static_cast<obs::Cause>(k));
    }
    const std::int64_t num = c.cause_total(x) + c.cause_total(y);
    return grand > 0 ? static_cast<double>(num) / static_cast<double>(grand)
                     : 0.0;
  };
  EXPECT_GT(share(ic, obs::Cause::kRun, obs::Cause::kReadyWait),
            share(bc, obs::Cause::kRun, obs::Cause::kReadyWait));
}

}  // namespace
