// EventQueue backend tests: the queue-level contract every backend must
// honour (strict {when, seq} total order, deadline-bounded pops,
// order-preserving compaction, size() counting every resident entry), the
// hybrid wheel's boundary behaviour (horizon spill, cursor teleport,
// behind-cursor pushes), and randomized engine-level equivalence — the
// same schedule/cancel/reschedule churn driven through each backend must
// dispatch in the identical order and produce byte-identical trace
// records, with the binary heap as the oracle.
#include <gtest/gtest.h>

#include <algorithm>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/sim/engine.h"
#include "src/sim/event_queue.h"
#include "src/sim/rng.h"
#include "src/sim/trace.h"

namespace {

using namespace irs;

constexpr sim::QueueKind kAllKinds[] = {
    sim::QueueKind::kBinaryHeap,
    sim::QueueKind::kQuadHeap,
    sim::QueueKind::kHybridWheel,
};

std::string kind_label(const ::testing::TestParamInfo<sim::QueueKind>& info) {
  return sim::make_event_queue(info.param)->name();
}

// One wheel bucket spans 2^17 ns; the wheel covers 512 buckets (~67 ms).
// The tests below use these to aim entries at specific wheel regions
// without reaching into backend internals.
constexpr sim::Time kBucketNs = 1 << 17;
constexpr sim::Time kHorizonNs = 512 * kBucketNs;

class QueueBackend : public ::testing::TestWithParam<sim::QueueKind> {
 protected:
  std::unique_ptr<sim::EventQueue> q_ = sim::make_event_queue(GetParam());
};

TEST_P(QueueBackend, ReportsItsKind) {
  EXPECT_EQ(q_->kind(), GetParam());
  EXPECT_STRNE(q_->name(), "");
}

TEST_P(QueueBackend, PopsInTotalOrderAcrossAllRegions) {
  // Entries land in every structural region a backend can have: the open
  // bucket, mid-wheel, the last in-horizon bucket, beyond the horizon, and
  // duplicate timestamps that only `seq` disambiguates.
  std::vector<sim::QEntry> entries;
  std::uint64_t seq = 0;
  for (sim::Time when : {sim::Time{1}, kBucketNs / 2, 3 * kBucketNs,
                         kHorizonNs - 1, kHorizonNs + 5, 40 * kHorizonNs,
                         sim::Time{1}, 3 * kBucketNs, kHorizonNs + 5}) {
    entries.push_back({when, seq, static_cast<std::uint32_t>(seq), 0});
    ++seq;
  }
  // Push in a scrambled order; the queue must still pop sorted.
  std::vector<sim::QEntry> scrambled = entries;
  sim::Rng rng(7);
  for (std::size_t i = scrambled.size(); i > 1; --i) {
    std::swap(scrambled[i - 1], scrambled[rng.next_below(i)]);
  }
  // `seq` must stay push-monotone per the interface contract, so renumber
  // after the shuffle (the original seq rides along in `slot`).
  for (std::size_t i = 0; i < scrambled.size(); ++i) {
    scrambled[i].seq = i;
  }
  for (const auto& e : scrambled) q_->push(e);
  EXPECT_EQ(q_->size(), entries.size());

  std::vector<sim::QEntry> popped;
  sim::QEntry e;
  while (q_->pop(&e)) popped.push_back(e);
  ASSERT_EQ(popped.size(), entries.size());
  EXPECT_TRUE(std::is_sorted(popped.begin(), popped.end(),
                             [](const sim::QEntry& a, const sim::QEntry& b) {
                               return sim::entry_before(a, b);
                             }));
  EXPECT_EQ(q_->size(), 0u);
}

TEST_P(QueueBackend, PopUntilRespectsDeadline) {
  q_->push({10, 0, 0, 0});
  q_->push({kHorizonNs + 10, 1, 1, 0});
  sim::QEntry e;
  EXPECT_FALSE(q_->pop_until(9, &e));
  ASSERT_TRUE(q_->pop_until(10, &e));
  EXPECT_EQ(e.when, 10);
  EXPECT_FALSE(q_->pop_until(kHorizonNs + 9, &e));
  ASSERT_TRUE(q_->pop_until(kHorizonNs + 10, &e));
  EXPECT_EQ(e.when, kHorizonNs + 10);
  EXPECT_FALSE(q_->pop_until(sim::kTimeMax, &e));
}

TEST_P(QueueBackend, PeekDoesNotConsumeOrReorder) {
  q_->push({5, 0, 0, 0});
  q_->push({5, 1, 1, 0});
  sim::QEntry e;
  ASSERT_TRUE(q_->peek(&e));
  EXPECT_EQ(e.seq, 0u);
  ASSERT_TRUE(q_->peek(&e));
  EXPECT_EQ(e.seq, 0u);
  EXPECT_EQ(q_->size(), 2u);
  ASSERT_TRUE(q_->pop(&e));
  EXPECT_EQ(e.seq, 0u);
  ASSERT_TRUE(q_->pop(&e));
  EXPECT_EQ(e.seq, 1u);
}

TEST_P(QueueBackend, CompactDropsDeadPreservesSurvivorOrder) {
  // Liveness by slot parity: odd slots are "cancelled shells". Entries
  // span the wheel, the open region, and the far heap so compaction has to
  // filter every region, not just the heap.
  std::uint64_t seq = 0;
  for (sim::Time when : {sim::Time{3}, kBucketNs + 1, 7 * kBucketNs,
                         kHorizonNs + 99, 2 * kHorizonNs, kBucketNs + 1}) {
    q_->push({when, seq, static_cast<std::uint32_t>(seq), 0});
    ++seq;
  }
  // Drain the first entry so the wheel has opened a bucket (compaction
  // must also filter a partially-consumed open bucket).
  sim::QEntry e;
  ASSERT_TRUE(q_->pop(&e));
  EXPECT_EQ(e.slot, 0u);

  const std::size_t removed = q_->compact(
      [](void*, std::uint32_t slot, std::uint32_t) { return slot % 2 == 0; },
      nullptr);
  EXPECT_EQ(removed, 3u);  // slots 1, 3, 5 among the remaining five
  EXPECT_EQ(q_->size(), 2u);
  std::vector<std::uint32_t> slots;
  while (q_->pop(&e)) slots.push_back(e.slot);
  EXPECT_EQ(slots, (std::vector<std::uint32_t>{2, 4}));
}

TEST_P(QueueBackend, SizeCountsEveryResidentEntry) {
  for (std::uint64_t i = 0; i < 100; ++i) {
    // Alternate near-wheel and far-heap placements.
    const sim::Time when =
        (i % 2 == 0) ? static_cast<sim::Time>(i + 1) * kBucketNs / 4
                     : kHorizonNs + static_cast<sim::Time>(i) * kBucketNs;
    q_->push({when, i, static_cast<std::uint32_t>(i), 0});
    EXPECT_EQ(q_->size(), i + 1);
  }
  sim::QEntry e;
  for (std::size_t left = 100; left > 0; --left) {
    EXPECT_EQ(q_->size(), left);
    ASSERT_TRUE(q_->pop(&e));
  }
  EXPECT_EQ(q_->size(), 0u);
}

INSTANTIATE_TEST_SUITE_P(AllBackends, QueueBackend,
                         ::testing::ValuesIn(kAllKinds), kind_label);

// ---------------------------------------------------------------------------
// Hybrid-wheel boundary behaviour
// ---------------------------------------------------------------------------

TEST(WheelQueue, FarFutureEntriesSpillToHeapAndMergeBack) {
  auto q = sim::make_event_queue(sim::QueueKind::kHybridWheel);
  // Far first (heap), then near (wheel): pops must interleave correctly
  // as the cursor crosses from wheel territory into spilled territory.
  q->push({kHorizonNs + 2 * kBucketNs, 0, 0, 0});
  q->push({2 * kBucketNs, 1, 1, 0});
  q->push({kHorizonNs + kBucketNs, 2, 2, 0});
  q->push({kBucketNs, 3, 3, 0});
  sim::QEntry e;
  std::vector<std::uint32_t> order;
  while (q->pop(&e)) order.push_back(e.slot);
  EXPECT_EQ(order, (std::vector<std::uint32_t>{3, 1, 2, 0}));
}

TEST(WheelQueue, CursorTeleportsAcrossIdleGaps) {
  auto q = sim::make_event_queue(sim::QueueKind::kHybridWheel);
  sim::QEntry e;
  // Consume one near event, then push far beyond the horizon while the
  // wheel is empty: the cursor teleports instead of sweeping thousands of
  // empty buckets, and the event is wheel-resident (popped, not spilled).
  q->push({kBucketNs, 0, 0, 0});
  ASSERT_TRUE(q->pop(&e));
  const sim::Time far = 1000 * kHorizonNs + 3 * kBucketNs;
  q->push({far, 1, 1, 0});
  q->push({far + kBucketNs, 2, 2, 0});
  ASSERT_TRUE(q->pop(&e));
  EXPECT_EQ(e.slot, 1u);
  ASSERT_TRUE(q->pop(&e));
  EXPECT_EQ(e.slot, 2u);
  EXPECT_FALSE(q->pop(&e));
}

TEST(WheelQueue, PushBehindOpenBucketStillPopsInOrder) {
  auto q = sim::make_event_queue(sim::QueueKind::kHybridWheel);
  // Open a bucket mid-wheel, then push a same-bucket timestamp *behind*
  // the cursor (the engine clamps `when` to now(), so this models a
  // zero-delay event scheduled from inside a dispatch): it must not be
  // lost, and must pop after already-sorted due entries per seq order.
  q->push({5 * kBucketNs + 10, 0, 0, 0});
  q->push({5 * kBucketNs + 20, 1, 1, 0});
  sim::QEntry e;
  ASSERT_TRUE(q->pop(&e));
  EXPECT_EQ(e.slot, 0u);
  q->push({5 * kBucketNs + 20, 2, 2, 0});  // same when, later seq, open bucket
  ASSERT_TRUE(q->pop(&e));
  EXPECT_EQ(e.slot, 1u);
  ASSERT_TRUE(q->pop(&e));
  EXPECT_EQ(e.slot, 2u);
}

TEST(WheelQueue, SameTimestampFifoAcrossWheelHeapBoundary) {
  auto q = sim::make_event_queue(sim::QueueKind::kHybridWheel);
  // Identical `when` just past the horizon: while near events keep the
  // wheel populated, the far push spills to the heap; once the cursor has
  // advanced enough, a second push of the very same `when` is
  // wheel-resident. The seq tie-break must hold across the two structures.
  const sim::Time when = kHorizonNs + kBucketNs + 7;
  q->push({kBucketNs, 0, 0, 0});      // wheel-resident anchors
  q->push({2 * kBucketNs, 1, 1, 0});
  q->push({when, 2, 2, 0});           // beyond horizon -> heap spill
  sim::QEntry e;
  ASSERT_TRUE(q->pop(&e));
  EXPECT_EQ(e.slot, 0u);
  ASSERT_TRUE(q->pop(&e));  // cursor now deep enough for `when` to fit
  EXPECT_EQ(e.slot, 1u);
  q->push({when, 3, 3, 0});           // same when, now within horizon
  ASSERT_TRUE(q->pop(&e));
  EXPECT_EQ(e.slot, 2u);  // heap entry first: same when, lower seq
  ASSERT_TRUE(q->pop(&e));
  EXPECT_EQ(e.slot, 3u);
  EXPECT_FALSE(q->pop(&e));
}

// ---------------------------------------------------------------------------
// Engine-level: wheel-resident shells and the compaction trigger
// ---------------------------------------------------------------------------

class EngineBackend : public ::testing::TestWithParam<sim::QueueKind> {};

TEST_P(EngineBackend, WheelResidentShellsTriggerCompaction) {
  // All events sit 100 µs apart — inside the wheel horizon, so on the
  // hybrid backend every one is wheel-resident. The shell-ratio trigger
  // (shells > size/2, size >= 64) must count them: cancel 70 of 128 and
  // compaction fires at the 65th cancel, leaving 5 uncompacted shells.
  sim::Engine eng(GetParam());
  std::vector<sim::EventHandle> handles;
  int fired = 0;
  for (int i = 0; i < 128; ++i) {
    handles.push_back(
        eng.schedule((i + 1) * sim::microseconds(100), [&] { ++fired; }));
  }
  EXPECT_EQ(eng.queued(), 128u);
  for (int i = 0; i < 70; ++i) handles[i].cancel();
  EXPECT_EQ(eng.queued(), 63u);  // compacted at the 65th cancel: 128-65
  EXPECT_EQ(eng.cancelled_shells(), 5u);
  eng.run();
  EXPECT_EQ(fired, 58);
  EXPECT_EQ(eng.queued(), 0u);
}

TEST_P(EngineBackend, CalendarResidentShellsTriggerCompaction) {
  // The far-future mirror of the wheel case above: every event sits past
  // the wheel horizon but inside the calendar span, so on the hybrid
  // backend all of them are calendar-resident. Stale shells parked in
  // calendar buckets must feed the same shell-ratio trigger (counted by
  // size() and removed by compact()), with identical arithmetic.
  sim::Engine eng(GetParam());
  std::vector<sim::EventHandle> handles;
  int fired = 0;
  for (int i = 0; i < 128; ++i) {
    handles.push_back(eng.schedule(
        2 * kHorizonNs + (i + 1) * sim::milliseconds(1), [&] { ++fired; }));
  }
  EXPECT_EQ(eng.queued(), 128u);
  for (int i = 0; i < 70; ++i) handles[i].cancel();
  EXPECT_EQ(eng.queued(), 63u);  // compacted at the 65th cancel: 128-65
  EXPECT_EQ(eng.cancelled_shells(), 5u);
  eng.run();
  EXPECT_EQ(fired, 58);
  EXPECT_EQ(eng.queued(), 0u);
}

// ---------------------------------------------------------------------------
// Randomized equivalence vs the binary-heap oracle
// ---------------------------------------------------------------------------

/// One dispatch observed by the churn driver below.
struct Dispatch {
  sim::Time when;
  int id;
  bool operator==(const Dispatch& o) const {
    return when == o.when && id == o.id;
  }
};

/// Drive a deterministic random schedule/cancel/reschedule workload on an
/// engine with the given backend. Delays mix sub-bucket, cross-bucket, and
/// beyond-horizon magnitudes so entries keep crossing the wheel<->heap
/// boundary; callbacks re-schedule and cancel from inside dispatch. Every
/// dispatch appends to the returned log and records a kUser trace entry.
std::vector<Dispatch> run_churn(sim::QueueKind kind, std::uint64_t seed,
                                sim::Trace* trace) {
  sim::Engine eng(kind);
  eng.set_trace(trace);
  sim::Rng rng(seed);
  std::vector<Dispatch> log;
  std::vector<sim::EventHandle> handles;
  int next_id = 0;

  auto random_delay = [&]() -> sim::Duration {
    switch (rng.next_below(4)) {
      case 0:  return static_cast<sim::Duration>(rng.next_below(64));
      case 1:  return static_cast<sim::Duration>(rng.next_below(kBucketNs));
      case 2:  return static_cast<sim::Duration>(rng.next_below(kHorizonNs));
      default: return static_cast<sim::Duration>(
          kHorizonNs + rng.next_below(4 * kHorizonNs));
    }
  };

  std::function<void(int)> fire = [&](int id) {
    log.push_back({eng.now(), id});
    if (trace != nullptr) {
      trace->record(eng.now(), sim::TraceKind::kUser, id,
                    static_cast<std::int32_t>(log.size()));
    }
    // From inside dispatch: sometimes schedule a successor, sometimes
    // cancel a random outstanding handle.
    if (rng.next_below(3) == 0) {
      const int nid = next_id++;
      handles.push_back(eng.schedule(random_delay(), [&fire, nid] {
        fire(nid);
      }));
    }
    if (!handles.empty() && rng.next_below(4) == 0) {
      handles[rng.next_below(handles.size())].cancel();
    }
  };

  for (int round = 0; round < 40; ++round) {
    const int n = 5 + static_cast<int>(rng.next_below(25));
    for (int i = 0; i < n; ++i) {
      const int id = next_id++;
      handles.push_back(eng.schedule(random_delay(), [&fire, id] {
        fire(id);
      }));
    }
    // Cancel a random batch (some already-fired handles among them — both
    // no-op and live cancels are exercised).
    const int cancels = static_cast<int>(rng.next_below(8));
    for (int i = 0; i < cancels && !handles.empty(); ++i) {
      handles[rng.next_below(handles.size())].cancel();
    }
    // Advance by a random slice; occasionally drain completely.
    if (rng.next_below(10) == 0) {
      eng.run();
    } else {
      eng.run_until(eng.now() + random_delay() + 1);
    }
  }
  eng.run();
  EXPECT_EQ(eng.queued(), 0u);
  return log;
}

/// Strip kQueueGeometry records before cross-backend comparison: only the
/// wheel backend ever retunes, so its trace may legitimately carry
/// geometry records the heap backends never produce. Everything else must
/// match field for field.
std::vector<sim::TraceRecord> without_geometry(
    std::vector<sim::TraceRecord> recs) {
  std::erase_if(recs, [](const sim::TraceRecord& r) {
    return r.kind == sim::TraceKind::kQueueGeometry;
  });
  return recs;
}

TEST(QueueOracle, RandomChurnMatchesBinaryHeapDispatchAndTraceBytes) {
  for (std::uint64_t seed : {1ull, 20260805ull, 0xdecafbadull}) {
    sim::Trace oracle_trace(1 << 12);
    const auto oracle =
        run_churn(sim::QueueKind::kBinaryHeap, seed, &oracle_trace);
    ASSERT_FALSE(oracle.empty());
    const auto oracle_snap = without_geometry(oracle_trace.snapshot());

    for (sim::QueueKind kind :
         {sim::QueueKind::kQuadHeap, sim::QueueKind::kHybridWheel}) {
      sim::Trace trace(1 << 12);
      const auto got = run_churn(kind, seed, &trace);
      EXPECT_EQ(got, oracle) << "dispatch order diverged, seed " << seed;
      const auto snap = without_geometry(trace.snapshot());
      ASSERT_EQ(snap.size(), oracle_snap.size());
      // Every trace record field-identical (memcmp would also compare
      // indeterminate padding bytes).
      for (std::size_t i = 0; i < snap.size(); ++i) {
        EXPECT_EQ(snap[i].when, oracle_snap[i].when) << "record " << i;
        EXPECT_EQ(snap[i].seq, oracle_snap[i].seq) << "record " << i;
        EXPECT_EQ(snap[i].kind, oracle_snap[i].kind) << "record " << i;
        EXPECT_EQ(snap[i].a, oracle_snap[i].a) << "record " << i;
        EXPECT_EQ(snap[i].b, oracle_snap[i].b) << "record " << i;
        EXPECT_EQ(snap[i].c, oracle_snap[i].c) << "record " << i;
        EXPECT_TRUE(snap[i].note == oracle_snap[i].note.c_str())
            << "record " << i;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllBackends, EngineBackend,
                         ::testing::ValuesIn(kAllKinds), kind_label);

}  // namespace
