// Unit tests for the discrete-event engine.
#include "src/sim/engine.h"

#include <gtest/gtest.h>

#include <vector>

namespace irs::sim {
namespace {

TEST(Engine, StartsAtTimeZero) {
  Engine eng;
  EXPECT_EQ(eng.now(), 0);
  EXPECT_EQ(eng.queued(), 0u);
  EXPECT_EQ(eng.dispatched(), 0u);
}

TEST(Engine, DispatchesInTimeOrder) {
  Engine eng;
  std::vector<int> order;
  eng.schedule(milliseconds(3), [&] { order.push_back(3); });
  eng.schedule(milliseconds(1), [&] { order.push_back(1); });
  eng.schedule(milliseconds(2), [&] { order.push_back(2); });
  eng.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(eng.now(), milliseconds(3));
}

TEST(Engine, SameTimestampIsFifo) {
  Engine eng;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    eng.schedule(milliseconds(5), [&order, i] { order.push_back(i); });
  }
  eng.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(Engine, NegativeDelayClampsToNow) {
  Engine eng;
  eng.schedule(milliseconds(1), [] {});
  eng.run();
  bool fired = false;
  eng.schedule(-milliseconds(5), [&] { fired = true; });
  eng.run();
  fired = false;
  eng.schedule(-1, [&] { fired = true; });
  eng.run();
  EXPECT_TRUE(fired);
  EXPECT_EQ(eng.now(), milliseconds(1));
}

TEST(Engine, ScheduleAtPastClampsToNow) {
  Engine eng;
  eng.schedule(milliseconds(10), [] {});
  eng.run();
  Time fired_at = -1;
  eng.schedule_at(milliseconds(2), [&] { fired_at = eng.now(); });
  eng.run();
  EXPECT_EQ(fired_at, milliseconds(10));
}

TEST(Engine, CancelPreventsDispatch) {
  Engine eng;
  bool fired = false;
  EventHandle h = eng.schedule(milliseconds(1), [&] { fired = true; });
  EXPECT_TRUE(h.pending());
  h.cancel();
  EXPECT_FALSE(h.pending());
  eng.run();
  EXPECT_FALSE(fired);
}

TEST(Engine, CancelAfterFireIsNoop) {
  Engine eng;
  int count = 0;
  EventHandle h = eng.schedule(milliseconds(1), [&] { ++count; });
  eng.run();
  EXPECT_FALSE(h.pending());
  h.cancel();  // must not crash or affect anything
  eng.run();
  EXPECT_EQ(count, 1);
}

TEST(Engine, DefaultHandleIsInert) {
  EventHandle h;
  EXPECT_FALSE(h.pending());
  h.cancel();  // no-op
}

TEST(Engine, RunUntilStopsAtDeadline) {
  Engine eng;
  int fired = 0;
  for (int i = 1; i <= 10; ++i) {
    eng.schedule(milliseconds(i), [&] { ++fired; });
  }
  const auto n = eng.run_until(milliseconds(5));
  EXPECT_EQ(n, 5u);
  EXPECT_EQ(fired, 5);
  EXPECT_EQ(eng.now(), milliseconds(5));
  eng.run();
  EXPECT_EQ(fired, 10);
}

TEST(Engine, RunUntilAdvancesClockWhenIdle) {
  Engine eng;
  eng.run_until(seconds(2));
  EXPECT_EQ(eng.now(), seconds(2));
}

TEST(Engine, EventsCanScheduleEvents) {
  Engine eng;
  std::vector<Time> times;
  std::function<void()> chain = [&] {
    times.push_back(eng.now());
    if (times.size() < 5) eng.schedule(milliseconds(1), chain);
  };
  eng.schedule(0, chain);
  eng.run();
  ASSERT_EQ(times.size(), 5u);
  for (std::size_t i = 0; i < times.size(); ++i) {
    EXPECT_EQ(times[i], static_cast<Time>(i) * kMillisecond);
  }
}

TEST(Engine, RunWhilePredicate) {
  Engine eng;
  int count = 0;
  for (int i = 0; i < 100; ++i) {
    eng.schedule(i, [&] { ++count; });
  }
  const bool stopped = eng.run_while([&] { return count < 10; });
  EXPECT_TRUE(stopped);
  EXPECT_EQ(count, 10);
}

TEST(Engine, RunWhileReturnsFalseWhenDrained) {
  Engine eng;
  eng.schedule(1, [] {});
  const bool stopped = eng.run_while([] { return true; });
  EXPECT_FALSE(stopped);
}

TEST(Engine, DispatchedCounterExcludesCancelled) {
  Engine eng;
  auto h1 = eng.schedule(1, [] {});
  eng.schedule(2, [] {});
  h1.cancel();
  eng.run();
  EXPECT_EQ(eng.dispatched(), 1u);
}

TEST(EngineTime, ConversionHelpers) {
  EXPECT_EQ(microseconds(1), 1000);
  EXPECT_EQ(milliseconds(1), 1000 * 1000);
  EXPECT_EQ(seconds(1), 1000 * 1000 * 1000);
  EXPECT_DOUBLE_EQ(to_ms(milliseconds(30)), 30.0);
  EXPECT_DOUBLE_EQ(to_us(microseconds(26)), 26.0);
  EXPECT_DOUBLE_EQ(to_sec(seconds(3)), 3.0);
}

}  // namespace
}  // namespace irs::sim
