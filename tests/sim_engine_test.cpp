// Unit tests for the discrete-event engine.
#include "src/sim/engine.h"

#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <vector>

#include "src/sim/trace.h"

namespace irs::sim {

/// Test-only backdoor into the event pool, used to fast-forward a slot's
/// generation counter to the wraparound boundary (reaching it organically
/// would take 2^32 schedules).
struct EngineTestAccess {
  static void set_slot_generation(Engine& eng, std::uint32_t slot,
                                  std::uint32_t gen) {
    eng.slots_.at(slot).gen = gen;
  }
  static std::uint32_t slot_generation(const Engine& eng,
                                       std::uint32_t slot) {
    return eng.slots_.at(slot).gen;
  }
};

namespace {

TEST(Engine, StartsAtTimeZero) {
  Engine eng;
  EXPECT_EQ(eng.now(), 0);
  EXPECT_EQ(eng.queued(), 0u);
  EXPECT_EQ(eng.dispatched(), 0u);
}

TEST(Engine, DispatchesInTimeOrder) {
  Engine eng;
  std::vector<int> order;
  eng.schedule(milliseconds(3), [&] { order.push_back(3); });
  eng.schedule(milliseconds(1), [&] { order.push_back(1); });
  eng.schedule(milliseconds(2), [&] { order.push_back(2); });
  eng.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(eng.now(), milliseconds(3));
}

TEST(Engine, SameTimestampIsFifo) {
  Engine eng;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    eng.schedule(milliseconds(5), [&order, i] { order.push_back(i); });
  }
  eng.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(Engine, NegativeDelayClampsToNow) {
  Engine eng;
  eng.schedule(milliseconds(1), [] {});
  eng.run();
  bool fired = false;
  eng.schedule(-milliseconds(5), [&] { fired = true; });
  eng.run();
  fired = false;
  eng.schedule(-1, [&] { fired = true; });
  eng.run();
  EXPECT_TRUE(fired);
  EXPECT_EQ(eng.now(), milliseconds(1));
}

TEST(Engine, ScheduleAtPastClampsToNow) {
  Engine eng;
  eng.schedule(milliseconds(10), [] {});
  eng.run();
  Time fired_at = -1;
  eng.schedule_at(milliseconds(2), [&] { fired_at = eng.now(); });
  eng.run();
  EXPECT_EQ(fired_at, milliseconds(10));
}

TEST(Engine, CancelPreventsDispatch) {
  Engine eng;
  bool fired = false;
  EventHandle h = eng.schedule(milliseconds(1), [&] { fired = true; });
  EXPECT_TRUE(h.pending());
  h.cancel();
  EXPECT_FALSE(h.pending());
  eng.run();
  EXPECT_FALSE(fired);
}

TEST(Engine, CancelAfterFireIsNoop) {
  Engine eng;
  int count = 0;
  EventHandle h = eng.schedule(milliseconds(1), [&] { ++count; });
  eng.run();
  EXPECT_FALSE(h.pending());
  h.cancel();  // must not crash or affect anything
  eng.run();
  EXPECT_EQ(count, 1);
}

TEST(Engine, DefaultHandleIsInert) {
  EventHandle h;
  EXPECT_FALSE(h.pending());
  h.cancel();  // no-op
}

TEST(Engine, RunUntilStopsAtDeadline) {
  Engine eng;
  int fired = 0;
  for (int i = 1; i <= 10; ++i) {
    eng.schedule(milliseconds(i), [&] { ++fired; });
  }
  const auto n = eng.run_until(milliseconds(5));
  EXPECT_EQ(n, 5u);
  EXPECT_EQ(fired, 5);
  EXPECT_EQ(eng.now(), milliseconds(5));
  eng.run();
  EXPECT_EQ(fired, 10);
}

TEST(Engine, RunUntilAdvancesClockWhenIdle) {
  Engine eng;
  eng.run_until(seconds(2));
  EXPECT_EQ(eng.now(), seconds(2));
}

TEST(Engine, EventsCanScheduleEvents) {
  Engine eng;
  std::vector<Time> times;
  std::function<void()> chain = [&] {
    times.push_back(eng.now());
    if (times.size() < 5) eng.schedule(milliseconds(1), chain);
  };
  eng.schedule(0, chain);
  eng.run();
  ASSERT_EQ(times.size(), 5u);
  for (std::size_t i = 0; i < times.size(); ++i) {
    EXPECT_EQ(times[i], static_cast<Time>(i) * kMillisecond);
  }
}

TEST(Engine, RunWhilePredicate) {
  Engine eng;
  int count = 0;
  for (int i = 0; i < 100; ++i) {
    eng.schedule(i, [&] { ++count; });
  }
  const bool stopped = eng.run_while([&] { return count < 10; });
  EXPECT_TRUE(stopped);
  EXPECT_EQ(count, 10);
}

TEST(Engine, RunWhileReturnsFalseWhenDrained) {
  Engine eng;
  eng.schedule(1, [] {});
  const bool stopped = eng.run_while([] { return true; });
  EXPECT_FALSE(stopped);
}

TEST(Engine, DispatchedCounterExcludesCancelled) {
  Engine eng;
  auto h1 = eng.schedule(1, [] {});
  eng.schedule(2, [] {});
  h1.cancel();
  eng.run();
  EXPECT_EQ(eng.dispatched(), 1u);
}

// --- Event pool / generation-handle behaviour ---

TEST(EnginePool, HandleHasThreeStates) {
  Engine eng;
  // State 1: detached (default-constructed).
  EventHandle detached;
  EXPECT_FALSE(detached.attached());
  EXPECT_FALSE(detached.pending());

  // State 2: pending.
  EventHandle h = eng.schedule(milliseconds(1), [] {});
  EXPECT_TRUE(h.attached());
  EXPECT_TRUE(h.pending());

  // State 3: spent via firing. Still attached, no longer pending.
  eng.run();
  EXPECT_TRUE(h.attached());
  EXPECT_FALSE(h.pending());

  // State 3 via cancellation is indistinguishable from firing.
  EventHandle c = eng.schedule(milliseconds(1), [] {});
  c.cancel();
  EXPECT_TRUE(c.attached());
  EXPECT_FALSE(c.pending());
}

TEST(EnginePool, SlotReusedAfterFire) {
  Engine eng;
  eng.schedule(1, [] {});
  eng.run();
  ASSERT_EQ(eng.pool_slots(), 1u);
  // The freed slot is recycled instead of growing the pool.
  eng.schedule(1, [] {});
  EXPECT_EQ(eng.pool_slots(), 1u);
  eng.run();
  EXPECT_EQ(eng.pool_slots(), 1u);
}

TEST(EnginePool, SlotReusedAfterCancel) {
  Engine eng;
  EventHandle h = eng.schedule(1000, [] {});
  ASSERT_EQ(eng.pool_slots(), 1u);
  h.cancel();
  EXPECT_EQ(eng.cancelled_shells(), 1u);
  // New event reuses the cancelled slot; the old handle must not alias it.
  EventHandle h2 = eng.schedule(2000, [] {});
  EXPECT_EQ(eng.pool_slots(), 1u);
  EXPECT_FALSE(h.pending());
  EXPECT_TRUE(h2.pending());
  h.cancel();  // stale handle: must not cancel the new event
  EXPECT_TRUE(h2.pending());
  int fired = 0;
  eng.schedule(3000, [&] { ++fired; });
  eng.run();
  EXPECT_EQ(fired, 1);
}

TEST(EnginePool, SteadyStateKeepsPoolFlat) {
  Engine eng;
  // A self-rescheduling ticker plus a cancel-heavy side channel: the pool
  // must stay at its high-water mark, not grow with event count.
  int ticks = 0;
  std::function<void()> tick = [&] {
    if (++ticks < 1000) eng.schedule(10, tick);
  };
  eng.schedule(0, tick);
  eng.run();
  EXPECT_EQ(ticks, 1000);
  EXPECT_LE(eng.pool_slots(), 2u);
}

TEST(EnginePool, GenerationWraparoundIsSafe) {
  Engine eng;
  // Create slot 0 and free it, then fast-forward its generation counter to
  // the wrap boundary.
  eng.schedule(1, [] {});
  eng.run();
  EngineTestAccess::set_slot_generation(eng, 0, UINT32_MAX);

  int fired = 0;
  EventHandle old = eng.schedule(1, [&] { ++fired; });
  EXPECT_TRUE(old.pending());
  eng.run();  // firing bumps the generation: UINT32_MAX wraps to 0
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(EngineTestAccess::slot_generation(eng, 0), 0u);

  // The slot is reused at generation 0; the spent handle (gen UINT32_MAX)
  // must neither read as pending nor cancel the new occupant.
  EventHandle fresh = eng.schedule(1, [&] { ++fired; });
  EXPECT_FALSE(old.pending());
  EXPECT_TRUE(fresh.pending());
  old.cancel();
  EXPECT_TRUE(fresh.pending());
  eng.run();
  EXPECT_EQ(fired, 2);
}

TEST(EnginePool, FifoTieBreakSurvivesCancelAndReuse) {
  Engine eng;
  std::vector<int> order;
  auto push = [&](int v) { return [&order, v] { order.push_back(v); }; };
  eng.schedule(milliseconds(1), push(0));
  EventHandle b = eng.schedule(milliseconds(1), push(1));
  eng.schedule(milliseconds(1), push(2));
  b.cancel();
  // Reuses b's slot but must still fire last (scheduling order, not slot
  // order, breaks timestamp ties).
  eng.schedule(milliseconds(1), push(3));
  eng.run();
  EXPECT_EQ(order, (std::vector<int>{0, 2, 3}));
}

TEST(EnginePool, CompactionDropsShellsNotLiveEvents) {
  Engine eng;
  std::vector<EventHandle> handles;
  int fired = 0;
  for (int i = 0; i < 100; ++i) {
    handles.push_back(eng.schedule(milliseconds(i + 1), [&] { ++fired; }));
  }
  ASSERT_EQ(eng.queued(), 100u);
  // Cancel 60 of 100: once shells outnumber half the queue (at the 51st
  // cancel) compaction sweeps them; the 9 cancels after that sit as shells
  // because the shrunken queue is below the compaction floor.
  for (int i = 0; i < 60; ++i) handles[static_cast<std::size_t>(i)].cancel();
  EXPECT_EQ(eng.queued(), 49u);
  EXPECT_EQ(eng.cancelled_shells(), 9u);
  eng.run();
  EXPECT_EQ(fired, 40);
  for (int i = 60; i < 100; ++i) {
    EXPECT_FALSE(handles[static_cast<std::size_t>(i)].pending());
  }
}

TEST(EnginePool, RunUntilSkipsShellsBeyondDeadline) {
  Engine eng;
  // A cancelled shell in front of the deadline must not let dispatch run
  // past the deadline to the next live event.
  EventHandle early = eng.schedule(milliseconds(1), [] {});
  int fired = 0;
  eng.schedule(milliseconds(10), [&] { ++fired; });
  early.cancel();
  eng.run_until(milliseconds(5));
  EXPECT_EQ(fired, 0);
  EXPECT_EQ(eng.now(), milliseconds(5));
  eng.run();
  EXPECT_EQ(fired, 1);
}

TEST(EnginePool, RunReportsBudgetExhaustion) {
  Engine eng;
  Trace trace(16);
  eng.set_trace(&trace);
  // Runaway self-rescheduling loop.
  std::function<void()> forever = [&] { eng.schedule(1, forever); };
  eng.schedule(0, forever);
  const Engine::RunOutcome out = eng.run(/*max_events=*/10);
  EXPECT_EQ(out.dispatched, 10u);
  EXPECT_TRUE(out.budget_exhausted);
  EXPECT_EQ(trace.count(TraceKind::kEngineStop), 1u);

  // A drained queue is a normal completion, not exhaustion — even when the
  // count lands exactly on the budget.
  Engine eng2;
  eng2.schedule(1, [] {});
  eng2.schedule(2, [] {});
  const Engine::RunOutcome done = eng2.run(/*max_events=*/2);
  EXPECT_EQ(done.dispatched, 2u);
  EXPECT_FALSE(done.budget_exhausted);
}

// --- InlineFn (small-buffer callback) ---

TEST(InlineFn, TypicalSimCallbacksFitInline) {
  // Engine callbacks capture a few pointers/ids/durations; all of those
  // shapes must stay in the inline buffer (zero heap in steady state).
  struct FourPtrs {
    void *a, *b, *c, *d;
    void operator()() const {}
  };
  struct PtrsAndScalars {
    void* self;
    std::uint64_t id;
    Time when;
    Duration dur;
    int cpu;
    void operator()() const {}
  };
  static_assert(InlineFn::stores_inline<FourPtrs>());
  static_assert(InlineFn::stores_inline<PtrsAndScalars>());
}

TEST(InlineFn, OversizedCallableFallsBackToHeapAndStillRuns) {
  std::array<std::uint64_t, 32> big{};  // 256 bytes > kInlineBytes
  big[0] = 7;
  big[31] = 9;
  std::uint64_t sum = 0;
  auto fn = [big, &sum] { sum = big[0] + big[31]; };
  static_assert(!InlineFn::stores_inline<decltype(fn)>());
  Engine eng;
  eng.schedule(1, fn);
  eng.run();
  EXPECT_EQ(sum, 16u);
}

TEST(InlineFn, MoveTransfersOwnership) {
  int calls = 0;
  InlineFn a([&] { ++calls; });
  InlineFn b(std::move(a));
  EXPECT_FALSE(static_cast<bool>(a));  // NOLINT(bugprone-use-after-move)
  ASSERT_TRUE(static_cast<bool>(b));
  b();
  EXPECT_EQ(calls, 1);
  InlineFn c;
  c = std::move(b);
  c();
  EXPECT_EQ(calls, 2);
}

TEST(EngineTime, ConversionHelpers) {
  EXPECT_EQ(microseconds(1), 1000);
  EXPECT_EQ(milliseconds(1), 1000 * 1000);
  EXPECT_EQ(seconds(1), 1000 * 1000 * 1000);
  EXPECT_DOUBLE_EQ(to_ms(milliseconds(30)), 30.0);
  EXPECT_DOUBLE_EQ(to_us(microseconds(26)), 26.0);
  EXPECT_DOUBLE_EQ(to_sec(seconds(3)), 3.0);
}

}  // namespace
}  // namespace irs::sim
