// Unit tests for the trace ring buffer.
#include "src/sim/trace.h"

#include <gtest/gtest.h>

#include <set>
#include <string>

namespace irs::sim {
namespace {

TEST(Trace, DisabledByDefault) {
  Trace t;
  EXPECT_FALSE(t.enabled());
  t.record(0, TraceKind::kUser, 1, 2);  // ignored, no crash
  EXPECT_TRUE(t.snapshot().empty());
}

TEST(Trace, RecordsInOrder) {
  Trace t(16);
  for (int i = 0; i < 5; ++i) {
    t.record(i, TraceKind::kHvSchedule, i, -1);
  }
  const auto snap = t.snapshot();
  ASSERT_EQ(snap.size(), 5u);
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(snap[static_cast<size_t>(i)].when, i);
    EXPECT_EQ(snap[static_cast<size_t>(i)].a, i);
  }
}

TEST(Trace, RingKeepsMostRecent) {
  Trace t(4);
  for (int i = 0; i < 10; ++i) {
    t.record(i, TraceKind::kUser, i, -1);
  }
  const auto snap = t.snapshot();
  ASSERT_EQ(snap.size(), 4u);
  EXPECT_EQ(snap.front().a, 6);
  EXPECT_EQ(snap.back().a, 9);
}

TEST(Trace, CountByKind) {
  Trace t(32);
  t.record(0, TraceKind::kLhp, 0, 0);
  t.record(1, TraceKind::kLhp, 0, 0);
  t.record(2, TraceKind::kLwp, 0, 0);
  EXPECT_EQ(t.count(TraceKind::kLhp), 2u);
  EXPECT_EQ(t.count(TraceKind::kLwp), 1u);
  EXPECT_EQ(t.count(TraceKind::kSaSend), 0u);
}

TEST(Trace, ClearEmpties) {
  Trace t(8);
  t.record(0, TraceKind::kUser, 0, 0);
  t.clear();
  EXPECT_TRUE(t.snapshot().empty());
  EXPECT_EQ(t.count(TraceKind::kUser), 0u);
}

TEST(Trace, DumpContainsKindNames) {
  Trace t(8);
  t.record(milliseconds(1), TraceKind::kSaSend, 3, 0, "note");
  const auto s = t.dump();
  EXPECT_NE(s.find("sa.send"), std::string::npos);
  EXPECT_NE(s.find("note"), std::string::npos);
}

TEST(Trace, KindNamesAreDistinct) {
  EXPECT_STRNE(trace_kind_name(TraceKind::kLhp),
               trace_kind_name(TraceKind::kLwp));
  EXPECT_STRNE(trace_kind_name(TraceKind::kHvSchedule),
               trace_kind_name(TraceKind::kHvPreempt));
}

TEST(Trace, KindNamesRoundTripExhaustively) {
  // Every TraceKind must have a unique, non-placeholder name, and
  // trace_kind_from_name must invert trace_kind_name for all of them —
  // a kind added without a name (or a copy-pasted duplicate) fails here.
  std::set<std::string> seen;
  for (int i = 0; i < kNumTraceKinds; ++i) {
    const auto kind = static_cast<TraceKind>(i);
    const char* name = trace_kind_name(kind);
    ASSERT_NE(name, nullptr) << "kind " << i;
    EXPECT_STRNE(name, "") << "kind " << i;
    EXPECT_STRNE(name, "?") << "kind " << i;
    EXPECT_TRUE(seen.insert(name).second) << "duplicate name '" << name
                                          << "' for kind " << i;
    TraceKind back{};
    ASSERT_TRUE(trace_kind_from_name(name, &back)) << name;
    EXPECT_EQ(back, kind) << name;
  }
  // Unknown names and null are rejected without touching the out-param.
  TraceKind out = TraceKind::kLhp;
  EXPECT_FALSE(trace_kind_from_name("no.such.kind", &out));
  EXPECT_FALSE(trace_kind_from_name("", &out));
  EXPECT_EQ(out, TraceKind::kLhp);
  // The request bracket kinds ride the public contract forensics relies on.
  TraceKind rb{};
  ASSERT_TRUE(trace_kind_from_name("req.begin", &rb));
  EXPECT_EQ(rb, TraceKind::kReqBegin);
  ASSERT_TRUE(trace_kind_from_name("req.end", &rb));
  EXPECT_EQ(rb, TraceKind::kReqEnd);
}

}  // namespace
}  // namespace irs::sim
