// Tests for PLE and relaxed co-scheduling strategy components.
#include <gtest/gtest.h>

#include "tests/helpers.h"

namespace irs {
namespace {

using test::ScriptedBehavior;
using test::TestWorkload;

hv::VmConfig pinned(const std::string& name, std::vector<hv::PcpuId> pins) {
  hv::VmConfig cfg;
  cfg.name = name;
  cfg.n_vcpus = static_cast<int>(pins.size());
  cfg.pin_map = std::move(pins);
  return cfg;
}

TEST(Ple, ExitsFireOnlyWhenSomeoneWaits) {
  // fg task spins forever on pCPU0 where a hog VM queues behind it.
  core::WorldConfig wc;
  wc.n_pcpus = 2;
  wc.strategy = core::Strategy::kPle;
  core::World w(wc);
  const auto fg = w.add_vm(pinned("fg", {0}), false);
  w.attach(fg, std::make_unique<TestWorkload>(
                   "fg", [](guest::GuestKernel& k, TestWorkload& tw) {
                     auto& lock = tw.sync_ctx().make_spinlock();
                     tw.add_task(
                         k, "holder",
                         std::make_unique<ScriptedBehavior>(
                             std::vector<guest::Action>{
                                 guest::Action::spin_lock(lock),
                                 guest::Action::compute(sim::seconds(10)),
                             }),
                         0);
                     // Second task spins on the lock forever.
                     tw.add_task(
                         k, "spinner",
                         std::make_unique<ScriptedBehavior>(
                             std::vector<guest::Action>{
                                 guest::Action::compute(sim::microseconds(10)),
                                 guest::Action::spin_lock(lock),
                             }),
                         0);
                   }));
  const auto bg = w.add_vm(pinned("bg", {0}), false);
  w.attach(bg, std::make_unique<TestWorkload>(
                   "bg", [](guest::GuestKernel& k, TestWorkload& tw) {
                     tw.add_task(k, "hog", test::hog_behavior(), 0);
                   }));
  w.start();
  w.run_for(sim::seconds(1));
  EXPECT_GT(w.host().strategy_stats().ple_exits, 0u);
}

TEST(Ple, NoExitsWithoutCompetition) {
  // Spinner alone on its pCPU: PLE re-arms but never yields.
  core::WorldConfig wc;
  wc.n_pcpus = 2;
  wc.strategy = core::Strategy::kPle;
  core::World w(wc);
  const auto fg = w.add_vm(pinned("fg", {0, 1}), false);
  w.attach(fg, std::make_unique<TestWorkload>(
                   "fg", [](guest::GuestKernel& k, TestWorkload& tw) {
                     auto& lock = tw.sync_ctx().make_spinlock();
                     tw.add_task(
                         k, "holder",
                         std::make_unique<ScriptedBehavior>(
                             std::vector<guest::Action>{
                                 guest::Action::spin_lock(lock),
                                 guest::Action::compute(sim::seconds(10)),
                             }),
                         0);
                     tw.add_task(
                         k, "spinner",
                         std::make_unique<ScriptedBehavior>(
                             std::vector<guest::Action>{
                                 guest::Action::compute(sim::microseconds(10)),
                                 guest::Action::spin_lock(lock),
                             }),
                         1);
                   }));
  w.start();
  w.run_for(sim::seconds(1));
  EXPECT_EQ(w.host().strategy_stats().ple_exits, 0u);
}

TEST(Ple, DisabledUnderBaseline) {
  core::WorldConfig wc;
  wc.n_pcpus = 1;
  wc.strategy = core::Strategy::kBaseline;
  core::World w(wc);
  const auto fg = w.add_vm(pinned("fg", {0}), false);
  w.attach(fg, std::make_unique<TestWorkload>(
                   "fg", [](guest::GuestKernel& k, TestWorkload& tw) {
                     auto& lock = tw.sync_ctx().make_spinlock();
                     tw.add_task(
                         k, "holder",
                         std::make_unique<ScriptedBehavior>(
                             std::vector<guest::Action>{
                                 guest::Action::spin_lock(lock),
                                 guest::Action::compute(sim::seconds(5)),
                             }),
                         0);
                     tw.add_task(
                         k, "spinner",
                         std::make_unique<ScriptedBehavior>(
                             std::vector<guest::Action>{
                                 guest::Action::compute(sim::microseconds(10)),
                                 guest::Action::spin_lock(lock),
                             }),
                         0);
                   }));
  w.start();
  w.run_for(sim::milliseconds(500));
  EXPECT_EQ(w.host().strategy_stats().ple_exits, 0u);
}

TEST(RelaxedCo, StopsLeaderUnderSkew) {
  // fg VM with 2 vCPUs; vCPU0 contended by a hog -> persistent skew.
  core::WorldConfig wc;
  wc.n_pcpus = 2;
  wc.strategy = core::Strategy::kRelaxedCo;
  core::World w(wc);
  const auto fg = w.add_vm(pinned("fg", {0, 1}), false);
  w.attach(fg, std::make_unique<TestWorkload>(
                   "fg", [](guest::GuestKernel& k, TestWorkload& tw) {
                     tw.add_task(k, "a", test::hog_behavior(), 0);
                     tw.add_task(k, "b", test::hog_behavior(), 1);
                   }));
  const auto bg = w.add_vm(pinned("bg", {0}), false);
  w.attach(bg, std::make_unique<TestWorkload>(
                   "bg", [](guest::GuestKernel& k, TestWorkload& tw) {
                     tw.add_task(k, "hog", test::hog_behavior(), 0);
                   }));
  w.start();
  w.run_for(sim::seconds(2));
  // vCPU1 leads every period (vCPU0 loses ~50%): leader stops must fire.
  EXPECT_GT(w.host().strategy_stats().co_stops, 5u);
}

TEST(RelaxedCo, NoStopsWhenBalanced) {
  core::WorldConfig wc;
  wc.n_pcpus = 2;
  wc.strategy = core::Strategy::kRelaxedCo;
  core::World w(wc);
  const auto fg = w.add_vm(pinned("fg", {0, 1}), false);
  w.attach(fg, std::make_unique<TestWorkload>(
                   "fg", [](guest::GuestKernel& k, TestWorkload& tw) {
                     tw.add_task(k, "a", test::hog_behavior(), 0);
                     tw.add_task(k, "b", test::hog_behavior(), 1);
                   }));
  w.start();
  w.run_for(sim::seconds(2));
  EXPECT_EQ(w.host().strategy_stats().co_stops, 0u);
}

TEST(RelaxedCo, IdleCountsAsProgress) {
  // vCPU1 idles (blocked) while vCPU0 computes: idleness counts as
  // progress (the paper's criticised design), so no stops.
  core::WorldConfig wc;
  wc.n_pcpus = 2;
  wc.strategy = core::Strategy::kRelaxedCo;
  core::World w(wc);
  const auto fg = w.add_vm(pinned("fg", {0, 1}), false);
  w.attach(fg, std::make_unique<TestWorkload>(
                   "fg", [](guest::GuestKernel& k, TestWorkload& tw) {
                     tw.add_task(k, "a", test::hog_behavior(), 0);
                     // nothing on vCPU1: it stays blocked
                   }));
  w.start();
  w.run_for(sim::seconds(2));
  EXPECT_EQ(w.host().strategy_stats().co_stops, 0u);
}

TEST(RelaxedCo, StoppedLeaderResumesNextPeriod) {
  core::WorldConfig wc;
  wc.n_pcpus = 2;
  wc.strategy = core::Strategy::kRelaxedCo;
  core::World w(wc);
  const auto fg = w.add_vm(pinned("fg", {0, 1}), false);
  w.attach(fg, std::make_unique<TestWorkload>(
                   "fg", [](guest::GuestKernel& k, TestWorkload& tw) {
                     tw.add_task(k, "a", test::hog_behavior(), 0);
                     tw.add_task(k, "b", test::hog_behavior(), 1);
                   }));
  const auto bg = w.add_vm(pinned("bg", {0}), false);
  w.attach(bg, std::make_unique<TestWorkload>(
                   "bg", [](guest::GuestKernel& k, TestWorkload& tw) {
                     tw.add_task(k, "hog", test::hog_behavior(), 0);
                   }));
  w.start();
  w.run_for(sim::seconds(3));
  // Despite stops, the leading vCPU still makes progress over time (stops
  // last one period, not forever).
  const auto now = w.engine().now();
  const auto lead = w.host().vm(fg).vcpu(1).time_running(now);
  EXPECT_GT(sim::to_sec(lead), 1.0);
}

TEST(RelaxedCo, RespectsAffinityWhenBoostingLaggard) {
  // Laggard pinned to pCPU0 must never be migrated to the leader's pCPU1.
  core::WorldConfig wc;
  wc.n_pcpus = 2;
  wc.strategy = core::Strategy::kRelaxedCo;
  core::World w(wc);
  const auto fg = w.add_vm(pinned("fg", {0, 1}), false);
  w.attach(fg, std::make_unique<TestWorkload>(
                   "fg", [](guest::GuestKernel& k, TestWorkload& tw) {
                     tw.add_task(k, "a", test::hog_behavior(), 0);
                     tw.add_task(k, "b", test::hog_behavior(), 1);
                   }));
  const auto bg = w.add_vm(pinned("bg", {0}), false);
  w.attach(bg, std::make_unique<TestWorkload>(
                   "bg", [](guest::GuestKernel& k, TestWorkload& tw) {
                     tw.add_task(k, "hog", test::hog_behavior(), 0);
                   }));
  w.start();
  w.run_for(sim::seconds(3));
  // fg vCPU0 pinned to pCPU0: it must never have run on pCPU1. If it had,
  // its total running time could exceed its 50% share of pCPU0.
  const auto now = w.engine().now();
  EXPECT_EQ(w.host().vm(fg).vcpu(0).resident(), 0);
  EXPECT_LT(sim::to_sec(w.host().vm(fg).vcpu(0).time_running(now)), 1.8);
}

TEST(Strategy, NamesAndLists) {
  EXPECT_STREQ(core::strategy_name(core::Strategy::kBaseline), "Xen");
  EXPECT_STREQ(core::strategy_name(core::Strategy::kIrs), "IRS");
  EXPECT_EQ(core::all_strategies().size(), 4u);
  EXPECT_EQ(core::compared_strategies().size(), 3u);
  EXPECT_EQ(core::all_strategies().front(), core::Strategy::kBaseline);
}

}  // namespace
}  // namespace irs
