// Property-style invariant sweeps across (workload x strategy x
// interference) using parameterized gtest, plus randomized round-trip
// properties of the NDJSON result serialization.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <limits>
#include <string>
#include <tuple>

#include "src/exp/report.h"
#include "src/exp/runner.h"
#include "src/exp/shard.h"
#include "src/sim/rng.h"

namespace irs::exp {
namespace {

using Param = std::tuple<const char*, core::Strategy, int>;

class InvariantSweep : public ::testing::TestWithParam<Param> {};

TEST_P(InvariantSweep, RunObeysSystemInvariants) {
  const auto& [app, strategy, n_inter] = GetParam();
  ScenarioConfig cfg;
  cfg.fg = app;
  cfg.strategy = strategy;
  cfg.n_inter = n_inter;
  cfg.work_scale = 0.25;
  cfg.seed = 17;
  const RunResult r = run_scenario(cfg);

  // 1. The workload always completes.
  ASSERT_TRUE(r.finished) << app;

  // 2. Utilisation never exceeds fair share by more than rounding noise
  //    (paper §5.4: IRS must not break hypervisor fairness).
  EXPECT_LE(r.fg_util_vs_fair, 1.12) << app;

  // 3. Makespan is at least the ideal lower bound: per-thread work at
  //    full speed.
  const sim::Duration ideal = static_cast<sim::Duration>(
      0.25 * 0.9 * 1e6) * 600;  // >= 0.9x smallest catalogue work, scaled
  EXPECT_GE(r.fg_makespan, ideal / 1000) << app;

  // 4. SA accounting is consistent: every SA resolves exactly once.
  EXPECT_EQ(r.sa_sent, r.sa_acked + (r.sa_sent - r.sa_acked)) << app;
  if (strategy != core::Strategy::kIrs) {
    EXPECT_EQ(r.sa_sent, 0u) << app;
    EXPECT_EQ(r.irs_migrations, 0u) << app;
  }
}

INSTANTIATE_TEST_SUITE_P(
    BlockingApps, InvariantSweep,
    ::testing::Combine(::testing::Values("streamcluster", "fluidanimate",
                                         "x264", "blackscholes"),
                       ::testing::Values(core::Strategy::kBaseline,
                                         core::Strategy::kPle,
                                         core::Strategy::kRelaxedCo,
                                         core::Strategy::kIrs),
                       ::testing::Values(1, 2, 4)));

INSTANTIATE_TEST_SUITE_P(
    SpinningApps, InvariantSweep,
    ::testing::Combine(::testing::Values("CG", "MG", "UA"),
                       ::testing::Values(core::Strategy::kBaseline,
                                         core::Strategy::kPle,
                                         core::Strategy::kIrs),
                       ::testing::Values(1, 4)));

INSTANTIATE_TEST_SUITE_P(
    SpecialApps, InvariantSweep,
    ::testing::Combine(::testing::Values("raytrace", "dedup", "EP"),
                       ::testing::Values(core::Strategy::kBaseline,
                                         core::Strategy::kIrs),
                       ::testing::Values(1, 2)));

/// Work-conservation property: total useful compute equals the catalogue's
/// prescription regardless of strategy or interference.
class WorkConservation
    : public ::testing::TestWithParam<std::tuple<const char*, core::Strategy>> {
};

TEST_P(WorkConservation, UsefulComputeMatchesSpec) {
  const auto& [app, strategy] = GetParam();
  ScenarioConfig a;
  a.fg = app;
  a.strategy = core::Strategy::kBaseline;
  a.bg = "";
  a.work_scale = 0.25;
  a.seed = 29;
  ScenarioConfig b = a;
  b.strategy = strategy;
  b.bg = "hog";
  b.n_inter = 1;
  const RunResult alone = run_scenario(a);
  const RunResult loaded = run_scenario(b);
  ASSERT_TRUE(alone.finished);
  ASSERT_TRUE(loaded.finished);
  // The same computation is performed under interference; only the
  // schedule changes. Efficiency-vs-fair differs but total work is fixed,
  // so compare via efficiency * fair_share = useful work:
  // (exposed indirectly: both runs must have nonzero efficiency and the
  // loaded run must not do more work than capacity allows).
  EXPECT_GT(alone.fg_efficiency, 0.0);
  EXPECT_GT(loaded.fg_efficiency, 0.0);
  EXPECT_LE(loaded.fg_efficiency, 1.15);
}

INSTANTIATE_TEST_SUITE_P(
    Apps, WorkConservation,
    ::testing::Combine(::testing::Values("streamcluster", "UA", "x264",
                                         "raytrace"),
                       ::testing::Values(core::Strategy::kBaseline,
                                         core::Strategy::kIrs)));

/// Interference-level monotonicity: more interfered vCPUs never speeds the
/// foreground app up (sanity of the interference plumbing).
class InterferenceMonotonic : public ::testing::TestWithParam<const char*> {};

TEST_P(InterferenceMonotonic, MakespanGrowsWithInterference) {
  sim::Duration prev = 0;
  for (const int n_inter : {0, 1, 4}) {
    ScenarioConfig cfg;
    cfg.fg = GetParam();
    cfg.strategy = core::Strategy::kBaseline;
    cfg.bg = n_inter == 0 ? "" : "hog";
    cfg.n_inter = n_inter;
    cfg.work_scale = 0.25;
    cfg.seed = 31;
    const RunResult r = run_scenario(cfg);
    ASSERT_TRUE(r.finished);
    EXPECT_GE(r.fg_makespan, prev) << "n_inter=" << n_inter;
    // Allow 15% slack: e.g. spinning apps degrade ~2x at both 1-inter
    // (laggard-bound) and 4-inter (uniformly halved), in either order.
    prev = static_cast<sim::Duration>(0.85 * static_cast<double>(r.fg_makespan));
  }
}

INSTANTIATE_TEST_SUITE_P(Apps, InterferenceMonotonic,
                         ::testing::Values("streamcluster", "UA", "x264",
                                           "blackscholes", "raytrace"));

/// Determinism across every strategy.
class Determinism : public ::testing::TestWithParam<core::Strategy> {};

TEST_P(Determinism, IdenticalSeedsIdenticalResults) {
  ScenarioConfig cfg;
  cfg.fg = "MG";
  cfg.strategy = GetParam();
  cfg.work_scale = 0.2;
  cfg.seed = 37;
  const RunResult a = run_scenario(cfg);
  const RunResult b = run_scenario(cfg);
  EXPECT_EQ(a.fg_makespan, b.fg_makespan);
  EXPECT_EQ(a.lhp, b.lhp);
  EXPECT_EQ(a.lwp, b.lwp);
  EXPECT_EQ(a.sa_sent, b.sa_sent);
}

INSTANTIATE_TEST_SUITE_P(AllStrategies, Determinism,
                         ::testing::Values(core::Strategy::kBaseline,
                                           core::Strategy::kPle,
                                           core::Strategy::kRelaxedCo,
                                           core::Strategy::kIrs));

/// A RunResult with every field drawn from the simulator's own RNG:
/// durations span the full positive int64 range, doubles mix magnitudes
/// (including subnormal-ish and huge values) so the shortest round-trip
/// formatting is stressed, counters use the full uint64 range.
RunResult random_result(sim::Rng& rng) {
  RunResult r;
  r.finished = rng.next_below(2) == 1;
  r.fg_makespan = rng.uniform(0, std::numeric_limits<std::int64_t>::max());
  auto rnd_double = [&] {
    // Random mantissa at a random decade: exercises fixed and scientific
    // shortest forms, signs, and values with no short decimal expansion.
    const double mag = std::pow(10.0, static_cast<double>(rng.uniform(-30, 30)));
    const double v = (rng.next_double() * 2 - 1) * mag;
    return v;
  };
  r.fg_util_vs_fair = rnd_double();
  r.fg_efficiency = rnd_double();
  r.bg_progress_rate = rnd_double();
  r.throughput = rnd_double();
  r.lat_mean = rng.uniform(0, std::numeric_limits<std::int64_t>::max());
  r.lat_p99 = rng.uniform(0, std::numeric_limits<std::int64_t>::max());
  r.lhp = rng.next_u64();
  r.lwp = rng.next_u64();
  r.irs_migrations = rng.next_u64();
  r.sa_sent = rng.next_u64();
  r.sa_acked = rng.next_u64();
  r.sa_delay_avg = rng.uniform(0, std::numeric_limits<std::int64_t>::max());
  r.sampler_digest = rng.next_u64();
  return r;
}

/// serialize -> parse -> re-serialize is byte-identical, and the parsed
/// result is bit-identical, for arbitrary RunResults — the property the
/// sharded sweeps' merge-equals-single-process guarantee rests on.
TEST(NdjsonRoundTrip, RandomResultsSurviveByteAndBitIdentical) {
  sim::Rng rng(20260805);
  for (int i = 0; i < 500; ++i) {
    const RunResult r = random_result(rng);
    const std::string json = result_json(r);
    RunResult parsed;
    std::string err;
    ASSERT_TRUE(result_from_json(json, &parsed, &err)) << err << "\n" << json;
    EXPECT_TRUE(results_identical(r, parsed)) << json;
    EXPECT_EQ(result_json(parsed), json);
  }
}

TEST(NdjsonRoundTrip, RandomShardLinesSurviveByteAndBitIdentical) {
  sim::Rng rng(42);
  for (int i = 0; i < 200; ++i) {
    const RunResult r = random_result(rng);
    const std::size_t idx = static_cast<std::size_t>(rng.next_below(1u << 20));
    const std::string line = shard_line_json(idx, r);
    std::size_t parsed_idx = 0;
    RunResult parsed;
    std::string err;
    ASSERT_TRUE(parse_shard_line(line, &parsed_idx, &parsed, &err))
        << err << "\n" << line;
    EXPECT_EQ(parsed_idx, idx);
    EXPECT_TRUE(results_identical(r, parsed)) << line;
    EXPECT_EQ(shard_line_json(parsed_idx, parsed), line);
  }
}

}  // namespace
}  // namespace irs::exp
