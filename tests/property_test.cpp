// Property-style invariant sweeps across (workload x strategy x
// interference) using parameterized gtest.
#include <gtest/gtest.h>

#include <tuple>

#include "src/exp/runner.h"

namespace irs::exp {
namespace {

using Param = std::tuple<const char*, core::Strategy, int>;

class InvariantSweep : public ::testing::TestWithParam<Param> {};

TEST_P(InvariantSweep, RunObeysSystemInvariants) {
  const auto& [app, strategy, n_inter] = GetParam();
  ScenarioConfig cfg;
  cfg.fg = app;
  cfg.strategy = strategy;
  cfg.n_inter = n_inter;
  cfg.work_scale = 0.25;
  cfg.seed = 17;
  const RunResult r = run_scenario(cfg);

  // 1. The workload always completes.
  ASSERT_TRUE(r.finished) << app;

  // 2. Utilisation never exceeds fair share by more than rounding noise
  //    (paper §5.4: IRS must not break hypervisor fairness).
  EXPECT_LE(r.fg_util_vs_fair, 1.12) << app;

  // 3. Makespan is at least the ideal lower bound: per-thread work at
  //    full speed.
  const sim::Duration ideal = static_cast<sim::Duration>(
      0.25 * 0.9 * 1e6) * 600;  // >= 0.9x smallest catalogue work, scaled
  EXPECT_GE(r.fg_makespan, ideal / 1000) << app;

  // 4. SA accounting is consistent: every SA resolves exactly once.
  EXPECT_EQ(r.sa_sent, r.sa_acked + (r.sa_sent - r.sa_acked)) << app;
  if (strategy != core::Strategy::kIrs) {
    EXPECT_EQ(r.sa_sent, 0u) << app;
    EXPECT_EQ(r.irs_migrations, 0u) << app;
  }
}

INSTANTIATE_TEST_SUITE_P(
    BlockingApps, InvariantSweep,
    ::testing::Combine(::testing::Values("streamcluster", "fluidanimate",
                                         "x264", "blackscholes"),
                       ::testing::Values(core::Strategy::kBaseline,
                                         core::Strategy::kPle,
                                         core::Strategy::kRelaxedCo,
                                         core::Strategy::kIrs),
                       ::testing::Values(1, 2, 4)));

INSTANTIATE_TEST_SUITE_P(
    SpinningApps, InvariantSweep,
    ::testing::Combine(::testing::Values("CG", "MG", "UA"),
                       ::testing::Values(core::Strategy::kBaseline,
                                         core::Strategy::kPle,
                                         core::Strategy::kIrs),
                       ::testing::Values(1, 4)));

INSTANTIATE_TEST_SUITE_P(
    SpecialApps, InvariantSweep,
    ::testing::Combine(::testing::Values("raytrace", "dedup", "EP"),
                       ::testing::Values(core::Strategy::kBaseline,
                                         core::Strategy::kIrs),
                       ::testing::Values(1, 2)));

/// Work-conservation property: total useful compute equals the catalogue's
/// prescription regardless of strategy or interference.
class WorkConservation
    : public ::testing::TestWithParam<std::tuple<const char*, core::Strategy>> {
};

TEST_P(WorkConservation, UsefulComputeMatchesSpec) {
  const auto& [app, strategy] = GetParam();
  ScenarioConfig a;
  a.fg = app;
  a.strategy = core::Strategy::kBaseline;
  a.bg = "";
  a.work_scale = 0.25;
  a.seed = 29;
  ScenarioConfig b = a;
  b.strategy = strategy;
  b.bg = "hog";
  b.n_inter = 1;
  const RunResult alone = run_scenario(a);
  const RunResult loaded = run_scenario(b);
  ASSERT_TRUE(alone.finished);
  ASSERT_TRUE(loaded.finished);
  // The same computation is performed under interference; only the
  // schedule changes. Efficiency-vs-fair differs but total work is fixed,
  // so compare via efficiency * fair_share = useful work:
  // (exposed indirectly: both runs must have nonzero efficiency and the
  // loaded run must not do more work than capacity allows).
  EXPECT_GT(alone.fg_efficiency, 0.0);
  EXPECT_GT(loaded.fg_efficiency, 0.0);
  EXPECT_LE(loaded.fg_efficiency, 1.15);
}

INSTANTIATE_TEST_SUITE_P(
    Apps, WorkConservation,
    ::testing::Combine(::testing::Values("streamcluster", "UA", "x264",
                                         "raytrace"),
                       ::testing::Values(core::Strategy::kBaseline,
                                         core::Strategy::kIrs)));

/// Interference-level monotonicity: more interfered vCPUs never speeds the
/// foreground app up (sanity of the interference plumbing).
class InterferenceMonotonic : public ::testing::TestWithParam<const char*> {};

TEST_P(InterferenceMonotonic, MakespanGrowsWithInterference) {
  sim::Duration prev = 0;
  for (const int n_inter : {0, 1, 4}) {
    ScenarioConfig cfg;
    cfg.fg = GetParam();
    cfg.strategy = core::Strategy::kBaseline;
    cfg.bg = n_inter == 0 ? "" : "hog";
    cfg.n_inter = n_inter;
    cfg.work_scale = 0.25;
    cfg.seed = 31;
    const RunResult r = run_scenario(cfg);
    ASSERT_TRUE(r.finished);
    EXPECT_GE(r.fg_makespan, prev) << "n_inter=" << n_inter;
    // Allow 15% slack: e.g. spinning apps degrade ~2x at both 1-inter
    // (laggard-bound) and 4-inter (uniformly halved), in either order.
    prev = static_cast<sim::Duration>(0.85 * static_cast<double>(r.fg_makespan));
  }
}

INSTANTIATE_TEST_SUITE_P(Apps, InterferenceMonotonic,
                         ::testing::Values("streamcluster", "UA", "x264",
                                           "blackscholes", "raytrace"));

/// Determinism across every strategy.
class Determinism : public ::testing::TestWithParam<core::Strategy> {};

TEST_P(Determinism, IdenticalSeedsIdenticalResults) {
  ScenarioConfig cfg;
  cfg.fg = "MG";
  cfg.strategy = GetParam();
  cfg.work_scale = 0.2;
  cfg.seed = 37;
  const RunResult a = run_scenario(cfg);
  const RunResult b = run_scenario(cfg);
  EXPECT_EQ(a.fg_makespan, b.fg_makespan);
  EXPECT_EQ(a.lhp, b.lhp);
  EXPECT_EQ(a.lwp, b.lwp);
  EXPECT_EQ(a.sa_sent, b.sa_sent);
}

INSTANTIATE_TEST_SUITE_P(AllStrategies, Determinism,
                         ::testing::Values(core::Strategy::kBaseline,
                                           core::Strategy::kPle,
                                           core::Strategy::kRelaxedCo,
                                           core::Strategy::kIrs));

}  // namespace
}  // namespace irs::exp
