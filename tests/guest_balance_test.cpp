// Guest load-balancing tests: push/pull paths, vruntime rebasing, the
// semantic-gap blind spots, and the stop-based migration used by Fig. 1b.
#include <gtest/gtest.h>

#include "tests/helpers.h"

namespace irs {
namespace {

using test::ScriptedBehavior;
using test::TestWorkload;

hv::VmConfig pinned_vm(const std::string& name, int n) {
  hv::VmConfig cfg;
  cfg.name = name;
  cfg.n_vcpus = n;
  for (int i = 0; i < n; ++i) cfg.pin_map.push_back(i);
  return cfg;
}

TEST(Balance, PushFillsIdleCpu) {
  core::WorldConfig wc;
  wc.n_pcpus = 2;
  core::World w(wc);
  const auto vm = w.add_vm(pinned_vm("vm", 2), false);
  auto& wl = w.attach(vm, std::make_unique<TestWorkload>(
                              "t", [](guest::GuestKernel& k, TestWorkload& tw) {
                                // Both hogs start on CPU0; CPU1 idle.
                                tw.add_task(k, "a", test::hog_behavior(), 0);
                                tw.add_task(k, "b", test::hog_behavior(), 0);
                              }));
  w.start();
  w.run_for(sim::seconds(1));
  // Balancing must spread them: each gets ~1s of CPU.
  for (const guest::Task* t : wl.tasks()) {
    EXPECT_GT(sim::to_sec(t->stats.compute_done), 0.85) << t->name();
  }
  const auto& gs = w.kernel(vm).stats();
  EXPECT_GE(gs.push_migrations + gs.pull_migrations, 1u);
}

TEST(Balance, NoPingPongWhenBalanced) {
  core::WorldConfig wc;
  wc.n_pcpus = 2;
  core::World w(wc);
  const auto vm = w.add_vm(pinned_vm("vm", 2), false);
  auto& wl = w.attach(vm, std::make_unique<TestWorkload>(
                              "t", [](guest::GuestKernel& k, TestWorkload& tw) {
                                // 3 hogs on 2 cpus: 2-vs-1 is balanced.
                                tw.add_task(k, "a", test::hog_behavior(), 0);
                                tw.add_task(k, "b", test::hog_behavior(), 0);
                                tw.add_task(k, "c", test::hog_behavior(), 1);
                              }));
  w.start();
  w.run_for(sim::seconds(2));
  // A 2-vs-1 split must not thrash: few migrations in steady state.
  std::uint64_t total = 0;
  for (const guest::Task* t : wl.tasks()) total += t->stats.migrations;
  EXPECT_LT(total, 20u);
}

TEST(Balance, CannotPullRunningTaskOfPreemptedVcpu) {
  // The paper's second semantic gap: a task "running" on a descheduled
  // vCPU is not in any runqueue, so the balancer can't move it.
  core::WorldConfig wc;
  wc.n_pcpus = 2;
  core::World w(wc);
  const auto fg = w.add_vm(pinned_vm("fg", 2), false);
  auto& wl = w.attach(fg, std::make_unique<TestWorkload>(
                              "t", [](guest::GuestKernel& k, TestWorkload& tw) {
                                tw.add_task(k, "victim", test::hog_behavior(),
                                            0);
                              }));
  const auto bg = w.add_vm(pinned_vm("bg", 1), false);
  w.attach(bg, std::make_unique<TestWorkload>(
                   "bg", [](guest::GuestKernel& k, TestWorkload& tw) {
                     tw.add_task(k, "hog", test::hog_behavior(), 0);
                   }));
  w.start();
  w.run_for(sim::seconds(2));
  // Victim never blocks, never migrates: stuck at ~50% although vCPU1 is
  // idle the whole time.
  EXPECT_EQ(wl.tasks()[0]->stats.migrations, 0u);
  EXPECT_NEAR(sim::to_sec(wl.tasks()[0]->stats.compute_done), 1.0, 0.1);
}

TEST(Balance, NewIdleRescuesStrandedReadyTask) {
  // A ready task parked on a CPU whose vCPU can't run is pulled by an
  // idle sibling (donor has no current task).
  core::WorldConfig wc;
  wc.n_pcpus = 2;
  core::World w(wc);
  const auto fg = w.add_vm(pinned_vm("fg", 2), false);
  auto& wl = w.attach(
      fg, std::make_unique<TestWorkload>(
              "t", [](guest::GuestKernel& k, TestWorkload& tw) {
                // sleeper's home is CPU0 (contended); after each sleep it
                // wakes onto a CPU that may be preempted.
                tw.add_task(
                    k, "sleeper",
                    std::make_unique<ScriptedBehavior>(
                        std::vector<guest::Action>{
                            guest::Action::compute(sim::milliseconds(3)),
                            guest::Action::sleep(sim::milliseconds(1)),
                        },
                        /*loop=*/true),
                    0);
              }));
  const auto bg = w.add_vm(pinned_vm("bg", 1), false);
  w.attach(bg, std::make_unique<TestWorkload>(
                   "bg", [](guest::GuestKernel& k, TestWorkload& tw) {
                     tw.add_task(k, "hog", test::hog_behavior(), 0);
                   }));
  w.start();
  w.run_for(sim::seconds(2));
  // With rescue pulls the sleeper achieves clearly more than the ~33% a
  // permanently stranded wake-compute cycle would yield (vCPU1 is free,
  // but the guest keeps waking the task onto its "idle"-looking home CPU).
  EXPECT_GT(sim::to_sec(wl.tasks()[0]->stats.compute_done), 0.8);
  EXPECT_GE(w.kernel(fg).stats().pull_migrations, 1u);
}

TEST(Balance, MigrationRebasesVruntime) {
  // After a balancer move, the task must compete fairly on the new queue
  // (not be pushed to the far right and starved, nor monopolise).
  core::WorldConfig wc;
  wc.n_pcpus = 2;
  core::World w(wc);
  const auto vm = w.add_vm(pinned_vm("vm", 2), false);
  auto& wl = w.attach(vm, std::make_unique<TestWorkload>(
                              "t", [](guest::GuestKernel& k, TestWorkload& tw) {
                                for (int i = 0; i < 4; ++i) {
                                  tw.add_task(k, "h" + std::to_string(i),
                                              test::hog_behavior(), 0);
                                }
                              }));
  w.start();
  w.run_for(sim::seconds(4));
  // 4 hogs, 2 CPUs, 4 s: 8 s of capacity -> ~2 s of compute each.
  for (const guest::Task* t : wl.tasks()) {
    EXPECT_NEAR(sim::to_sec(t->stats.compute_done), 2.0, 0.3) << t->name();
  }
}

TEST(Balance, StopMigrationMovesRunningTask) {
  core::WorldConfig wc;
  wc.n_pcpus = 2;
  core::World w(wc);
  const auto vm = w.add_vm(pinned_vm("vm", 2), false);
  auto& wl = w.attach(vm, std::make_unique<TestWorkload>(
                              "t", [](guest::GuestKernel& k, TestWorkload& tw) {
                                tw.add_task(k, "a", test::hog_behavior(), 0);
                              }));
  w.start();
  w.run_for(sim::milliseconds(50));
  ASSERT_EQ(wl.tasks()[0]->cpu(), 0);
  sim::Duration latency = -1;
  w.kernel(vm).cpu(0).request_stop_migration(
      *wl.tasks()[0], 1, [&](sim::Duration d) { latency = d; });
  w.run_for(sim::milliseconds(10));
  EXPECT_GE(latency, 0);
  EXPECT_LT(latency, sim::milliseconds(1));  // uncontended: immediate
  EXPECT_EQ(wl.tasks()[0]->cpu(), 1);
  EXPECT_EQ(w.kernel(vm).stats().stop_migrations, 1u);
}

TEST(Balance, StopMigrationWaitsForPreemptedVcpu) {
  // Fig. 1b's mechanism: migrating off a contended vCPU takes ~a hv time
  // slice because the stopper must run on the source vCPU.
  core::WorldConfig wc;
  wc.n_pcpus = 2;
  core::World w(wc);
  const auto fg = w.add_vm(pinned_vm("fg", 2), false);
  auto& wl = w.attach(fg, std::make_unique<TestWorkload>(
                              "t", [](guest::GuestKernel& k, TestWorkload& tw) {
                                tw.add_task(k, "a", test::hog_behavior(), 0);
                              }));
  const auto bg = w.add_vm(pinned_vm("bg", 1), false);
  w.attach(bg, std::make_unique<TestWorkload>(
                   "bg", [](guest::GuestKernel& k, TestWorkload& tw) {
                     tw.add_task(k, "hog", test::hog_behavior(), 0);
                   }));
  w.start();
  w.run_for(sim::milliseconds(100));
  // Wait until the fg vCPU is preempted (hog's turn).
  while (w.host().vm(fg).vcpu(0).state() == hv::VcpuState::kRunning) {
    w.run_for(sim::milliseconds(1));
  }
  sim::Duration latency = -1;
  w.kernel(fg).cpu(0).request_stop_migration(
      *wl.tasks()[0], 1, [&](sim::Duration d) { latency = d; });
  w.run_for(sim::milliseconds(100));
  ASSERT_GE(latency, 0);
  // Must wait for the source vCPU to get the pCPU back: >= several ms.
  EXPECT_GT(latency, sim::milliseconds(2));
  EXPECT_LT(latency, sim::milliseconds(40));
}

TEST(Balance, LoadMetricScalesWithSteal) {
  core::WorldConfig wc;
  wc.n_pcpus = 1;
  core::World w(wc);
  const auto fg = w.add_vm(pinned_vm("fg", 1), false);
  w.attach(fg, std::make_unique<TestWorkload>(
                   "t", [](guest::GuestKernel& k, TestWorkload& tw) {
                     tw.add_task(k, "a", test::hog_behavior(), 0);
                   }));
  const auto bg = w.add_vm(pinned_vm("bg", 1), false);
  w.attach(bg, std::make_unique<TestWorkload>(
                   "bg", [](guest::GuestKernel& k, TestWorkload& tw) {
                     tw.add_task(k, "hog", test::hog_behavior(), 0);
                   }));
  w.start();
  w.run_for(sim::seconds(2));
  const auto& cpu = w.kernel(fg).cpu(0);
  // One task at ~50% capacity: metric ~2x the nominal load.
  EXPECT_GT(guest::LoadBalancer::load_metric(cpu), 1.5);
}

}  // namespace
}  // namespace irs
