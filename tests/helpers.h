// Shared test utilities: scripted behaviours, inline workloads, and world
// builders for the standard two-VM interference topology.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "src/core/world.h"
#include "src/guest/action.h"
#include "src/wl/workload.h"

namespace irs::test {

/// Behaviour that replays a fixed action list; finishes at the end unless
/// `loop` is set.
class ScriptedBehavior final : public guest::Behavior {
 public:
  explicit ScriptedBehavior(std::vector<guest::Action> script,
                            bool loop = false)
      : script_(std::move(script)), loop_(loop) {}

  guest::Action next(guest::Task&, sim::Time, sim::Rng&) override {
    if (i_ >= script_.size()) {
      if (!loop_) return guest::Action::finish();
      i_ = 0;
    }
    return script_[i_++];
  }

  [[nodiscard]] std::size_t steps_taken() const { return i_; }

 private:
  std::vector<guest::Action> script_;
  bool loop_;
  std::size_t i_ = 0;
};

/// Behaviour driven by an arbitrary callback.
class LambdaBehavior final : public guest::Behavior {
 public:
  using Fn = std::function<guest::Action(guest::Task&, sim::Time, sim::Rng&)>;
  explicit LambdaBehavior(Fn fn) : fn_(std::move(fn)) {}
  guest::Action next(guest::Task& t, sim::Time now, sim::Rng& rng) override {
    return fn_(t, now, rng);
  }

 private:
  Fn fn_;
};

/// Workload whose content is assembled by a setup callback at instantiate
/// time — lets tests compose arbitrary task/behaviour/sync configurations.
class TestWorkload final : public wl::Workload {
 public:
  using Setup = std::function<void(guest::GuestKernel&, TestWorkload&)>;
  TestWorkload(std::string name, Setup setup)
      : Workload(std::move(name)), setup_(std::move(setup)) {}

  void instantiate(guest::GuestKernel& k) override {
    sync_ = std::make_unique<sync::SyncContext>(k);
    setup_(k, *this);
  }

  guest::Task& add_task(guest::GuestKernel& k, const std::string& name,
                        std::unique_ptr<guest::Behavior> b,
                        int cpu = guest::kNoCpu) {
    behaviors_.push_back(std::move(b));
    tasks_.push_back(&k.create_task(name, *behaviors_.back(), cpu));
    return *tasks_.back();
  }

  [[nodiscard]] sync::SyncContext& sync_ctx() { return *sync_; }

 private:
  Setup setup_;
};

/// A plain "compute forever in 1 ms bursts" behaviour.
inline std::unique_ptr<guest::Behavior> hog_behavior(
    sim::Duration burst = sim::milliseconds(1)) {
  return std::make_unique<ScriptedBehavior>(
      std::vector<guest::Action>{guest::Action::compute(burst)}, true);
}

/// A single finite compute behaviour.
inline std::unique_ptr<guest::Behavior> compute_behavior(sim::Duration d) {
  return std::make_unique<ScriptedBehavior>(
      std::vector<guest::Action>{guest::Action::compute(d)});
}

}  // namespace irs::test
