// obs::Sampler tests: channel semantics on a bare engine, ring overflow
// accounting, and the headline determinism invariant — sampler series must
// be bit-identical regardless of how many threads the sweep pool uses.
#include "src/obs/sampler.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "src/exp/runner.h"
#include "src/exp/sweep.h"
#include "src/obs/counters.h"
#include "src/sim/engine.h"

namespace irs::obs {
namespace {

TEST(ObsSampler, CounterChannelsRecordDeltasGaugesRecordLevels) {
  sim::Engine eng;
  Counters cnt(2);
  std::int64_t level = 0;
  Sampler s(eng, sim::microseconds(100));
  s.add_counter("c", &cnt, Cnt::kWorkUnits);
  s.add_counter("c0", &cnt, Cnt::kWorkUnits, /*shard=*/0);
  s.add_gauge("g", [&]() { return level; });
  s.start();

  // Two increments land in tick 1's window, none in tick 2's — and series
  // are sparse, so the idle tick 2 pushes nothing anywhere.
  eng.schedule(sim::microseconds(10), [&]() {
    cnt.inc(0, Cnt::kWorkUnits);
    cnt.inc(1, Cnt::kWorkUnits);
    level = 5;
  });
  eng.run_until(sim::microseconds(250));

  ASSERT_EQ(s.n_series(), 3u);
  const auto c = s.series(0).samples();
  ASSERT_EQ(c.size(), 1u);  // tick 2's zero delta is implicit
  EXPECT_EQ(c[0].when, sim::microseconds(100));
  EXPECT_EQ(c[0].value, 2);  // fold across shards
  const auto c0 = s.series(1).samples();
  ASSERT_EQ(c0.size(), 1u);
  EXPECT_EQ(c0[0].value, 1);  // shard 0 only
  const auto g = s.series(2).samples();
  ASSERT_EQ(g.size(), 1u);  // level unchanged at tick 2 -> carried forward
  EXPECT_EQ(g[0].value, 5);
}

TEST(ObsSampler, RateChannelDeltasANonCounterSource) {
  sim::Engine eng;
  std::int64_t cum = 0;
  Sampler s(eng, sim::microseconds(100));
  s.add_rate("r", [&]() { return cum; });
  s.start();
  eng.schedule(sim::microseconds(50), [&]() { cum = 7; });
  eng.schedule(sim::microseconds(150), [&]() { cum = 10; });
  eng.run_until(sim::microseconds(250));
  const auto r = s.series(0).samples();
  ASSERT_EQ(r.size(), 2u);
  EXPECT_EQ(r[0].value, 7);
  EXPECT_EQ(r[1].value, 3);
}

TEST(ObsSampler, SeriesRingDropsOldestAndCounts) {
  Series s("x", 3);
  for (int i = 0; i < 5; ++i) s.push(i, i * 10);
  EXPECT_EQ(s.size(), 3u);
  EXPECT_EQ(s.dropped(), 2u);
  EXPECT_EQ(s.total(), 5u);
  const auto out = s.samples();
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out[0].value, 20);  // oldest retained
  EXPECT_EQ(out[2].value, 40);  // newest
}

TEST(ObsSampler, DigestReflectsSeriesContent) {
  sim::Engine eng;
  Sampler a(eng, sim::microseconds(100));
  Sampler b(eng, sim::microseconds(100));
  std::int64_t va = 0, vb = 0;
  a.add_gauge("g", [&]() { return va; });
  b.add_gauge("g", [&]() { return vb; });
  a.sample_now();
  b.sample_now();
  EXPECT_EQ(a.digest(), b.digest());
  va = 1;
  a.sample_now();
  vb = 2;
  b.sample_now();
  EXPECT_NE(a.digest(), b.digest());
}

TEST(ObsSampler, SamplingDoesNotPerturbTheRun) {
  exp::ScenarioConfig cfg;
  cfg.fg = "blackscholes";
  cfg.fg_threads = 2;
  cfg.n_vcpus = 2;
  cfg.n_pcpus = 2;
  cfg.work_scale = 0.05;
  cfg.seed = 11;
  const exp::RunResult plain = exp::run_scenario(cfg);
  cfg.sample_period = sim::microseconds(500);
  const exp::RunResult sampled = exp::run_scenario(cfg);
  EXPECT_EQ(plain.fg_makespan, sampled.fg_makespan);
  EXPECT_EQ(plain.lhp, sampled.lhp);
  EXPECT_EQ(plain.sa_sent, sampled.sa_sent);
  EXPECT_EQ(plain.sampler_digest, 0u);
  EXPECT_NE(sampled.sampler_digest, 0u);
}

TEST(ObsSampler, SeriesByteIdenticalAcrossRepeatRuns) {
  exp::ScenarioConfig cfg;
  cfg.fg = "blackscholes";
  cfg.fg_threads = 2;
  cfg.n_vcpus = 2;
  cfg.n_pcpus = 2;
  cfg.work_scale = 0.05;
  cfg.seed = 3;
  exp::TraceDump d1, d2;
  const exp::RunResult r1 = exp::run_scenario(cfg, &d1);
  const exp::RunResult r2 = exp::run_scenario(cfg, &d2);
  EXPECT_EQ(r1.sampler_digest, r2.sampler_digest);
  ASSERT_EQ(d1.series.size(), d2.series.size());
  ASSERT_GE(d1.series.size(), 4u);  // >= 4 counter tracks for the exporter
  for (std::size_t i = 0; i < d1.series.size(); ++i) {
    EXPECT_EQ(d1.series[i].name, d2.series[i].name);
    EXPECT_EQ(d1.series[i].dropped, d2.series[i].dropped);
    ASSERT_EQ(d1.series[i].samples.size(), d2.series[i].samples.size());
    for (std::size_t j = 0; j < d1.series[i].samples.size(); ++j) {
      EXPECT_EQ(d1.series[i].samples[j].when, d2.series[i].samples[j].when);
      EXPECT_EQ(d1.series[i].samples[j].value, d2.series[i].samples[j].value);
    }
  }
}

// Also runs under the obs_pipeline_tsan CTest job (scripts/tsan.sh): the
// digest comparison races if sampling leaks state across pool workers.
TEST(SweepSampler, DigestsBitIdenticalAcrossThreadCounts) {
  exp::ScenarioConfig cfg;
  cfg.fg = "blackscholes";
  cfg.fg_threads = 2;
  cfg.n_vcpus = 2;
  cfg.n_pcpus = 2;
  cfg.work_scale = 0.05;
  cfg.sample_period = sim::microseconds(500);
  const std::vector<exp::ScenarioConfig> grid = exp::seed_grid(cfg, 6);
  const std::vector<exp::RunResult> serial = exp::run_sweep(grid, 1);
  const std::vector<exp::RunResult> parallel = exp::run_sweep(grid, 8);
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_NE(serial[i].sampler_digest, 0u);
    EXPECT_EQ(serial[i].sampler_digest, parallel[i].sampler_digest)
        << "series diverged at run " << i;
  }
}

}  // namespace
}  // namespace irs::obs
