// Tests for the parallel sweep runner: seed derivation, pool coverage, and
// the bit-identical-to-serial guarantee the figure benches rely on.
// The Sweep* suites also run under TSan (scripts/tsan.sh / the
// sweep_determinism_tsan CTest job) to prove the pool is race-free.
#include "src/exp/sweep.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <set>
#include <vector>

#include "src/exp/runner.h"

namespace irs::exp {
namespace {

/// Field-by-field exact equality (doubles compared bitwise-equal via ==;
/// deterministic simulations must reproduce them exactly).
void expect_identical(const RunResult& a, const RunResult& b) {
  EXPECT_EQ(a.finished, b.finished);
  EXPECT_EQ(a.fg_makespan, b.fg_makespan);
  EXPECT_EQ(a.fg_util_vs_fair, b.fg_util_vs_fair);
  EXPECT_EQ(a.fg_efficiency, b.fg_efficiency);
  EXPECT_EQ(a.bg_progress_rate, b.bg_progress_rate);
  EXPECT_EQ(a.throughput, b.throughput);
  EXPECT_EQ(a.lat_mean, b.lat_mean);
  EXPECT_EQ(a.lat_p99, b.lat_p99);
  EXPECT_EQ(a.lhp, b.lhp);
  EXPECT_EQ(a.lwp, b.lwp);
  EXPECT_EQ(a.irs_migrations, b.irs_migrations);
  EXPECT_EQ(a.sa_sent, b.sa_sent);
  EXPECT_EQ(a.sa_acked, b.sa_acked);
  EXPECT_EQ(a.sa_delay_avg, b.sa_delay_avg);
}

/// A small fig05-style grid: apps x strategies x seeds, scaled down so the
/// whole sweep stays fast.
std::vector<ScenarioConfig> small_grid() {
  std::vector<ScenarioConfig> cfgs;
  for (const char* app : {"blackscholes", "streamcluster"}) {
    for (const auto strategy :
         {core::Strategy::kBaseline, core::Strategy::kIrs}) {
      ScenarioConfig cfg;
      cfg.fg = app;
      cfg.strategy = strategy;
      cfg.work_scale = 0.05;
      cfg.seed = 42;
      for (const auto& seeded : seed_grid(cfg, 2)) cfgs.push_back(seeded);
    }
  }
  return cfgs;
}

TEST(Sweep, DeriveSeedIsStableAndWellSpread) {
  // Pinned values: changing the derivation silently invalidates every
  // recorded benchmark, so it must fail loudly here.
  EXPECT_EQ(derive_seed(1, 0), derive_seed(1, 0));
  EXPECT_NE(derive_seed(1, 0), derive_seed(1, 1));
  EXPECT_NE(derive_seed(1, 0), derive_seed(2, 0));
  std::set<std::uint64_t> seen;
  for (std::uint64_t base : {0ULL, 1ULL, 42ULL}) {
    for (std::uint64_t i = 0; i < 100; ++i) {
      seen.insert(derive_seed(base, i));
    }
  }
  EXPECT_EQ(seen.size(), 300u);  // no collisions across bases/indices
}

TEST(Sweep, ParallelForCoversEveryIndexExactlyOnce) {
  constexpr std::size_t kN = 1000;
  std::vector<std::atomic<int>> hits(kN);
  parallel_for(kN, [&](std::size_t i) { ++hits[i]; }, /*n_threads=*/8);
  for (std::size_t i = 0; i < kN; ++i) EXPECT_EQ(hits[i].load(), 1);
}

TEST(Sweep, ParallelForPropagatesExceptions) {
  EXPECT_THROW(
      parallel_for(
          100,
          [](std::size_t i) {
            if (i == 37) throw std::runtime_error("boom");
          },
          4),
      std::runtime_error);
}

TEST(Sweep, JobsHonoursEnvVar) {
  setenv("IRS_BENCH_JOBS", "3", 1);
  EXPECT_EQ(sweep_jobs(), 3);
  unsetenv("IRS_BENCH_JOBS");
  EXPECT_GE(sweep_jobs(), 1);
}

TEST(Sweep, OneThreadAndManyThreadsAreBitIdentical) {
  const auto cfgs = small_grid();
  const auto serial = run_sweep(cfgs, /*n_threads=*/1);
  const auto parallel = run_sweep(cfgs, /*n_threads=*/4);
  ASSERT_EQ(serial.size(), cfgs.size());
  ASSERT_EQ(parallel.size(), cfgs.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    SCOPED_TRACE(i);
    expect_identical(serial[i], parallel[i]);
  }
}

TEST(Sweep, StreamingConsumerDeliversInOrderAndStaysBitIdentical) {
  const auto cfgs = small_grid();
  const auto serial = run_sweep(cfgs, /*n_threads=*/1);

  std::vector<std::size_t> order;
  std::vector<RunResult> streamed(cfgs.size());
  const auto parallel = run_sweep(
      cfgs,
      [&](std::size_t i, const RunResult& r) {
        order.push_back(i);
        streamed[i] = r;
      },
      /*n_threads=*/4);

  // Every run delivered exactly once, strictly in index order, regardless
  // of completion order on the pool.
  ASSERT_EQ(order.size(), cfgs.size());
  for (std::size_t i = 0; i < order.size(); ++i) EXPECT_EQ(order[i], i);

  // The streamed results, the returned vector, and the serial reference
  // are all the same.
  ASSERT_EQ(parallel.size(), cfgs.size());
  for (std::size_t i = 0; i < cfgs.size(); ++i) {
    SCOPED_TRACE(i);
    expect_identical(serial[i], parallel[i]);
    expect_identical(serial[i], streamed[i]);
  }
}

TEST(Sweep, NullConsumerBehavesLikePlainSweep) {
  const auto cfgs = small_grid();
  const auto plain = run_sweep(cfgs, /*n_threads=*/2);
  const auto with_null = run_sweep(cfgs, SweepConsumer{}, /*n_threads=*/2);
  ASSERT_EQ(plain.size(), with_null.size());
  for (std::size_t i = 0; i < plain.size(); ++i) {
    SCOPED_TRACE(i);
    expect_identical(plain[i], with_null[i]);
  }
}

TEST(Sweep, RunAveragedMatchesSerialRunScenarioCalls) {
  ScenarioConfig cfg;
  cfg.fg = "blackscholes";
  cfg.strategy = core::Strategy::kIrs;
  cfg.work_scale = 0.05;
  cfg.seed = 7;
  constexpr int kSeeds = 3;

  std::vector<RunResult> serial;
  for (int i = 0; i < kSeeds; ++i) {
    ScenarioConfig c = cfg;
    c.seed = derive_seed(cfg.seed, static_cast<std::uint64_t>(i));
    serial.push_back(run_scenario(c));
  }
  expect_identical(run_averaged(cfg, kSeeds), average_results(serial));
}

}  // namespace
}  // namespace irs::exp
