// Exporter tests: JsonWriter primitives, the stable RunResult JSON emitter,
// and the Chrome trace_event timeline writer — golden-checked byte-for-byte
// on a hand-built trace and structurally on a real (tiny) scenario run.
//
// Regenerate the golden file after an intentional format change with
//   IRS_REGEN_GOLDEN=1 ./irs_tests --gtest_filter=ObsExport.GoldenTinyTrace
#include "src/obs/chrome_trace.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <fstream>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

#include "src/exp/report.h"
#include "src/exp/runner.h"
#include "src/obs/json.h"

namespace irs::obs {
namespace {

/// Minimal JSON well-formedness scan: brace/bracket balance outside string
/// literals, escape-aware. Catches the usual writer bugs (stray commas are
/// caught by the golden test; unbalanced containers by this).
bool balanced_json(const std::string& s) {
  int depth = 0;
  bool in_string = false;
  bool escaped = false;
  for (const char c : s) {
    if (in_string) {
      if (escaped) {
        escaped = false;
      } else if (c == '\\') {
        escaped = true;
      } else if (c == '"') {
        in_string = false;
      }
      continue;
    }
    if (c == '"') {
      in_string = true;
    } else if (c == '{' || c == '[') {
      ++depth;
    } else if (c == '}' || c == ']') {
      if (--depth < 0) return false;
    }
  }
  return depth == 0 && !in_string;
}

int count_occurrences(const std::string& text, const std::string& needle) {
  int n = 0;
  for (std::size_t pos = text.find(needle); pos != std::string::npos;
       pos = text.find(needle, pos + needle.size())) {
    ++n;
  }
  return n;
}

// ---------------------------------------------------------------------------
// JsonWriter
// ---------------------------------------------------------------------------

TEST(ObsJson, WriterProducesCompactDeterministicOutput) {
  JsonWriter w;
  w.begin_object()
      .field("s", "hi")
      .field("i", 42)
      .field("d", 1.5)
      .field("b", true)
      .key("arr")
      .begin_array()
      .value(1)
      .value(2)
      .end_array()
      .key("nested")
      .begin_object()
      .end_object()
      .end_object();
  EXPECT_EQ(w.str(),
            "{\"s\":\"hi\",\"i\":42,\"d\":1.5,\"b\":true,"
            "\"arr\":[1,2],\"nested\":{}}");
}

TEST(ObsJson, EscapesPerRfc8259) {
  EXPECT_EQ(json_escape("a\"b\\c"), "\"a\\\"b\\\\c\"");
  EXPECT_EQ(json_escape("tab\there"), "\"tab\\there\"");
  EXPECT_EQ(json_escape(std::string("nul\0byte", 8)), "\"nul\\u0000byte\"");
}

TEST(ObsJson, NonFiniteDoublesBecomeNull) {
  JsonWriter w;
  w.begin_array()
      .value(std::nan(""))
      .value(std::numeric_limits<double>::infinity())
      .end_array();
  EXPECT_EQ(w.str(), "[null,null]");
}

// ---------------------------------------------------------------------------
// RunResult JSON
// ---------------------------------------------------------------------------

TEST(ObsExport, ResultJsonHasStableShape) {
  exp::RunResult r;
  r.finished = true;
  r.fg_makespan = sim::milliseconds(25);
  r.fg_util_vs_fair = 1.25;
  r.lhp = 7;
  r.sa_sent = 3;
  const std::string j = exp::result_json(r);
  EXPECT_TRUE(balanced_json(j)) << j;
  EXPECT_NE(j.find("\"finished\":true"), std::string::npos) << j;
  EXPECT_NE(j.find("\"fg_makespan_ns\":25000000"), std::string::npos) << j;
  EXPECT_NE(j.find("\"fg_util_vs_fair\":1.25"), std::string::npos) << j;
  EXPECT_NE(j.find("\"lhp\":7"), std::string::npos) << j;
  EXPECT_NE(j.find("\"sa_sent\":3"), std::string::npos) << j;
  // Key order is part of the contract (diffs between reports stay minimal).
  EXPECT_LT(j.find("\"finished\""), j.find("\"fg_makespan_ns\""));
  EXPECT_LT(j.find("\"lhp\""), j.find("\"sa_delay_avg_ns\""));
}

TEST(ObsExport, SweepJsonPreservesOrder) {
  exp::RunResult a;
  a.lhp = 1;
  exp::RunResult b;
  b.lhp = 2;
  const std::string j = exp::sweep_json({a, b});
  EXPECT_TRUE(balanced_json(j)) << j;
  EXPECT_NE(j.find("\"results\":["), std::string::npos) << j;
  EXPECT_LT(j.find("\"lhp\":1"), j.find("\"lhp\":2"));
}

// ---------------------------------------------------------------------------
// Chrome trace JSON
// ---------------------------------------------------------------------------

/// Hand-built two-vCPU trace exercising every event class the exporter
/// renders: spans (incl. reschedule-splits and end-of-trace close), an SA
/// send/ack flow, LHP/LWP instants, and the truncation marker.
std::vector<sim::TraceRecord> tiny_records() {
  using sim::TraceKind;
  std::vector<sim::TraceRecord> rs;
  std::uint64_t seq = 0;
  auto add = [&](sim::Time when, TraceKind k, std::int32_t a, std::int32_t b,
                 const char* note = "", std::int32_t c = -1) {
    rs.push_back(sim::TraceRecord{when, seq++, k, a, b, c, note});
  };
  add(sim::milliseconds(1), TraceKind::kHvSchedule, 0, 0);
  add(sim::milliseconds(1), TraceKind::kHvSchedule, 1, 1);
  add(sim::milliseconds(2), TraceKind::kSaSend, 1, -1);
  add(sim::microseconds(2500), TraceKind::kLhp, 0, 0, "runq", 5);
  add(sim::milliseconds(3), TraceKind::kHvPreempt, 0, 0);
  add(sim::microseconds(3500), TraceKind::kSaAck, 1, -1);
  add(sim::milliseconds(4), TraceKind::kLwp, 1, 1, "flock", 6);
  add(sim::microseconds(4500), TraceKind::kHvSchedule, 2, 0, "steal");
  add(sim::milliseconds(5), TraceKind::kHvSchedule, 2, 0);  // resched split
  add(sim::milliseconds(6), TraceKind::kHvBlock, 2, 0);
  return rs;  // vCPU 1 stays on-CPU; closed at meta.end
}

/// tiny_records() interleaved with guest-lane events: task switches on both
/// fg vCPUs, an idle gap when vCPU 0 is preempted, and a migration.
std::vector<sim::TraceRecord> tiny_full_records() {
  using sim::TraceKind;
  std::vector<sim::TraceRecord> rs;
  std::uint64_t seq = 0;
  auto add = [&](sim::Time when, TraceKind k, std::int32_t a, std::int32_t b,
                 const char* note = "", std::int32_t c = -1) {
    rs.push_back(sim::TraceRecord{when, seq++, k, a, b, c, note});
  };
  add(sim::milliseconds(1), TraceKind::kHvSchedule, 0, 0);
  add(sim::milliseconds(1), TraceKind::kHvSchedule, 1, 1);
  add(sim::milliseconds(1), TraceKind::kGuestSwitch, 0, 101);
  add(sim::milliseconds(1), TraceKind::kGuestSwitch, 1, 102);
  add(sim::milliseconds(2), TraceKind::kSaSend, 1, -1);
  add(sim::microseconds(2500), TraceKind::kLhp, 0, 0, "runq", 101);
  add(sim::milliseconds(3), TraceKind::kHvPreempt, 0, 0);
  add(sim::microseconds(3500), TraceKind::kSaAck, 1, -1);
  add(sim::microseconds(3500), TraceKind::kGuestSwitch, 1, -1, "sa-cs");
  add(sim::microseconds(3500), TraceKind::kMigrate, 101, 1, "", 0);
  add(sim::microseconds(3500), TraceKind::kGuestSwitch, 1, 101);
  add(sim::milliseconds(4), TraceKind::kLwp, 1, 1, "flock", 102);
  add(sim::microseconds(4500), TraceKind::kHvSchedule, 2, 0, "steal");
  add(sim::milliseconds(5), TraceKind::kHvSchedule, 2, 0);
  add(sim::milliseconds(6), TraceKind::kHvBlock, 2, 0);
  return rs;  // vCPU 1 and task 101's guest span close at meta.end
}

std::vector<SeriesData> tiny_series() {
  std::vector<SeriesData> out;
  out.push_back(SeriesData{
      "hv/lhp",
      {{sim::milliseconds(1), 0}, {sim::milliseconds(3), 1}},
      0});
  out.push_back(SeriesData{
      "hv/runnable_vcpus",
      {{sim::milliseconds(1), 0}, {sim::milliseconds(3), 1}},
      0});
  return out;
}

TraceMeta tiny_meta() {
  TraceMeta m;
  m.title = "tiny";
  m.n_pcpus = 2;
  m.vcpus = {{0, "fg", 0}, {1, "fg", 1}, {2, "bg0", 0}};
  m.start = 0;
  m.end = sim::milliseconds(10);
  m.dropped = 2;
  m.total_recorded = 12;
  return m;
}

TraceMeta tiny_full_meta() {
  TraceMeta m = tiny_meta();
  m.tasks = {{101, "fg", "worker0"}, {102, "fg", "worker1"}};
  return m;
}

TEST(ObsExport, GoldenTinyTrace) {
  const std::string json = chrome_trace_json(tiny_records(), tiny_meta());
  ASSERT_TRUE(balanced_json(json)) << json;

  const std::string path = std::string(IRS_GOLDEN_DIR) + "/tiny_trace.json";
  if (std::getenv("IRS_REGEN_GOLDEN") != nullptr) {
    std::ofstream out(path);
    out << json;
    ASSERT_TRUE(out.good()) << "could not regenerate " << path;
    GTEST_SKIP() << "regenerated " << path;
  }
  std::ifstream in(path);
  ASSERT_TRUE(in.good()) << "missing golden file " << path
                         << " (run with IRS_REGEN_GOLDEN=1 to create)";
  std::stringstream ss;
  ss << in.rdbuf();
  EXPECT_EQ(json, ss.str())
      << "exporter output drifted from the golden file; if intentional, "
         "regenerate with IRS_REGEN_GOLDEN=1";
}

TEST(ObsExport, GoldenTinyTraceFull) {
  // Guest lanes + counter tracks on top of the hv timeline, golden-checked
  // byte-for-byte like the plain variant.
  const auto series = tiny_series();
  ChromeTraceOptions opt;
  opt.guest_lanes = true;
  opt.counters = &series;
  const std::string json =
      chrome_trace_json(tiny_full_records(), tiny_full_meta(), opt);
  ASSERT_TRUE(balanced_json(json)) << json;

  const std::string path =
      std::string(IRS_GOLDEN_DIR) + "/tiny_trace_full.json";
  if (std::getenv("IRS_REGEN_GOLDEN") != nullptr) {
    std::ofstream out(path);
    out << json;
    ASSERT_TRUE(out.good()) << "could not regenerate " << path;
    GTEST_SKIP() << "regenerated " << path;
  }
  std::ifstream in(path);
  ASSERT_TRUE(in.good()) << "missing golden file " << path
                         << " (run with IRS_REGEN_GOLDEN=1 to create)";
  std::stringstream ss;
  ss << in.rdbuf();
  EXPECT_EQ(json, ss.str())
      << "exporter output drifted from the golden file; if intentional, "
         "regenerate with IRS_REGEN_GOLDEN=1";
}

TEST(ObsExport, TinyTraceFullStructure) {
  const auto series = tiny_series();
  ChromeTraceOptions opt;
  opt.guest_lanes = true;
  opt.counters = &series;
  const std::string json =
      chrome_trace_json(tiny_full_records(), tiny_full_meta(), opt);
  // Guest process with labelled task spans.
  EXPECT_NE(json.find("\"guest tasks\""), std::string::npos);
  EXPECT_NE(json.find("\"fg/worker0\""), std::string::npos);
  EXPECT_NE(json.find("\"fg/worker1\""), std::string::npos);
  // The migration renders as a flow pair in the "migrate" category.
  EXPECT_EQ(count_occurrences(json, "\"cat\":\"migrate\""), 2);
  // Counter tracks: one "C" event per sample, under the counters process.
  EXPECT_EQ(count_occurrences(json, "\"ph\":\"C\""), 4);
  EXPECT_NE(json.find("\"hv/lhp\""), std::string::npos);
  EXPECT_NE(json.find("\"hv/runnable_vcpus\""), std::string::npos);
  // LHP instant carries the on-CPU task id from the record's c payload.
  EXPECT_NE(json.find("\"task\":101"), std::string::npos);
  // Truncation marker sits at the first retained timestamp, not t=0.
  EXPECT_NE(json.find("\"head_us\":1000"), std::string::npos);
  // Options off ⇒ guest records are ignored (plain overload unchanged).
  const std::string plain =
      chrome_trace_json(tiny_full_records(), tiny_full_meta());
  EXPECT_EQ(plain.find("\"guest tasks\""), std::string::npos);
  EXPECT_EQ(count_occurrences(plain, "\"ph\":\"C\""), 0);
}

TEST(ObsExport, TinyTraceStructure) {
  const std::string json = chrome_trace_json(tiny_records(), tiny_meta());
  // Lane metadata for both processes and every lane.
  EXPECT_NE(json.find("\"pCPUs\""), std::string::npos);
  EXPECT_NE(json.find("\"vCPUs\""), std::string::npos);
  EXPECT_NE(json.find("\"pCPU 1\""), std::string::npos);
  EXPECT_NE(json.find("\"fg/vcpu1\""), std::string::npos);
  EXPECT_NE(json.find("\"bg0/vcpu0\""), std::string::npos);
  // Truncation marker with the drop accounting.
  EXPECT_NE(json.find("\"trace truncated\""), std::string::npos);
  EXPECT_NE(json.find("\"dropped\":2"), std::string::npos);
  // 4 spans (v0; v2 split in two by the reschedule; v1 closed at the trace
  // end), each mirrored on the pCPU and vCPU lanes.
  EXPECT_EQ(count_occurrences(json, "\"ph\":\"X\""), 8);
  // One SA flow pair and the two instants.
  EXPECT_EQ(count_occurrences(json, "\"ph\":\"s\""), 1);
  EXPECT_EQ(count_occurrences(json, "\"ph\":\"f\""), 1);
  EXPECT_NE(json.find("\"LHP\""), std::string::npos);
  EXPECT_NE(json.find("\"LWP\""), std::string::npos);
  EXPECT_NE(json.find("\"task\":5"), std::string::npos);
  // vCPU 1's span runs from 1 ms to meta.end (10 ms) = 9 ms duration.
  EXPECT_NE(json.find("\"ts\":1000,\"dur\":9000"), std::string::npos);
}

TEST(ObsExport, ScenarioTraceDumpIsWellFormed) {
  // A real (tiny) run end-to-end through run_scenario's dump path: the
  // exporter must emit valid JSON with on-CPU spans for the actual topology.
  exp::ScenarioConfig cfg;
  cfg.fg = "blackscholes";
  cfg.fg_threads = 2;
  cfg.n_vcpus = 2;
  cfg.n_pcpus = 2;
  cfg.strategy = core::Strategy::kIrs;
  cfg.work_scale = 0.05;
  cfg.seed = 11;

  exp::TraceDump dump;
  const exp::RunResult r = exp::run_scenario(cfg, &dump);
  EXPECT_TRUE(r.finished);
  ASSERT_FALSE(dump.records.empty());
  ASSERT_EQ(dump.meta.vcpus.size(), 3u);  // 2 fg + 1 bg vCPU
  EXPECT_EQ(dump.meta.n_pcpus, 2);
  EXPECT_GT(dump.meta.end, dump.meta.start);

  // Snapshot ordering invariant the exporter depends on.
  for (std::size_t i = 1; i < dump.records.size(); ++i) {
    EXPECT_LE(dump.records[i - 1].when, dump.records[i].when);
  }

  const std::string json = chrome_trace_json(dump.records, dump.meta);
  EXPECT_TRUE(balanced_json(json));
  EXPECT_NE(json.find("\"fg/vcpu0\""), std::string::npos);
  EXPECT_NE(json.find("\"bg0/vcpu0\""), std::string::npos);
  EXPECT_GT(count_occurrences(json, "\"ph\":\"X\""), 0);
  if (r.sa_sent > 0) {
    EXPECT_GT(count_occurrences(json, "\"ph\":\"s\""), 0);
  }
  if (r.lhp > 0) {
    EXPECT_GT(count_occurrences(json, "\"LHP\""), 0);
  }
}

TEST(ObsExport, RunWithoutDumpStaysUntraced) {
  // The plain overload must not pay for tracing: same scenario, no dump.
  exp::ScenarioConfig cfg;
  cfg.fg = "blackscholes";
  cfg.fg_threads = 2;
  cfg.n_vcpus = 2;
  cfg.n_pcpus = 2;
  cfg.work_scale = 0.05;
  cfg.seed = 11;
  exp::TraceDump dump;
  const exp::RunResult traced = exp::run_scenario(cfg, &dump);
  const exp::RunResult plain = exp::run_scenario(cfg);
  // Tracing must not perturb the simulation.
  EXPECT_EQ(plain.fg_makespan, traced.fg_makespan);
  EXPECT_EQ(plain.lhp, traced.lhp);
  EXPECT_EQ(plain.sa_sent, traced.sa_sent);
}

}  // namespace
}  // namespace irs::obs
