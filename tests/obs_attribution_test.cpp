// obs::Attribution unit tests: hand-built traces with known steal windows
// and LHP/LWP classifications, so every charge is verifiable by arithmetic,
// plus an end-to-end check on a real 2-VM scenario run.
#include "src/obs/attribution.h"

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "src/exp/report.h"
#include "src/exp/runner.h"

namespace irs::obs {
namespace {

using sim::TraceKind;

class TraceBuilder {
 public:
  void add(sim::Time when, TraceKind k, std::int32_t a, std::int32_t b,
           const char* note = "", std::int32_t c = -1) {
    rs_.push_back(sim::TraceRecord{when, seq_++, k, a, b, c, note});
  }
  [[nodiscard]] const std::vector<sim::TraceRecord>& records() const {
    return rs_;
  }

 private:
  std::vector<sim::TraceRecord> rs_;
  std::uint64_t seq_ = 0;
};

TraceMeta two_vm_meta() {
  TraceMeta m;
  m.n_pcpus = 2;
  m.vcpus = {{0, "fg", 0}, {1, "fg", 1}, {2, "bg0", 0}};
  m.tasks = {{101, "fg", "worker0"}, {102, "fg", "worker1"}};
  m.start = 0;
  m.end = sim::milliseconds(10);
  return m;
}

TEST(ObsAttribution, ChargesWindowsToTasksAndLocks) {
  TraceBuilder t;
  // Guest lanes: worker0 on vCPU 0, worker1 on vCPU 1 from t=1ms.
  t.add(sim::milliseconds(1), TraceKind::kGuestSwitch, 0, 101);
  t.add(sim::milliseconds(1), TraceKind::kGuestSwitch, 1, 102);
  // LHP window on vCPU 0: classified at deschedule, preempted 2ms..5ms.
  t.add(sim::milliseconds(2), TraceKind::kLhp, 0, 0, "runq", 101);
  t.add(sim::milliseconds(2), TraceKind::kHvPreempt, 0, 0);
  t.add(sim::milliseconds(5), TraceKind::kHvSchedule, 0, 0);
  // LWP window on vCPU 1: spinning on "flock", preempted 4ms..6ms.
  t.add(sim::milliseconds(4), TraceKind::kLwp, 1, 1, "flock", 102);
  t.add(sim::milliseconds(4), TraceKind::kHvPreempt, 1, 1);
  t.add(sim::milliseconds(6), TraceKind::kHvSchedule, 1, 1);
  // Plain runnable-wait on vCPU 0: woke at 7ms, placed at 8ms.
  t.add(sim::milliseconds(7), TraceKind::kHvWake, 0, 0);
  t.add(sim::milliseconds(8), TraceKind::kHvSchedule, 0, 0);
  // Window still open at the trace end: vCPU 1 preempted at 9ms.
  t.add(sim::milliseconds(9), TraceKind::kHvPreempt, 1, 1);

  const AttributionResult a = attribute(t.records(), two_vm_meta());

  // 3 + 2 + 1 + (10-9) = 7ms of steal, all charged.
  EXPECT_EQ(a.total_steal, sim::milliseconds(7));
  EXPECT_EQ(a.charged, sim::milliseconds(7));
  EXPECT_EQ(a.uncharged, 0);
  EXPECT_GE(a.coverage(), 0.95);
  EXPECT_EQ(a.head_truncated_at, -1);

  ASSERT_EQ(a.tasks.size(), 2u);
  // Sorted largest-total first: worker0 4ms > worker1 3ms.
  const TaskCharge& w0 = a.tasks[0];
  EXPECT_EQ(w0.label, "fg/worker0");
  EXPECT_EQ(w0.task, 101);
  EXPECT_EQ(w0.total, sim::milliseconds(4));
  EXPECT_EQ(w0.lhp, sim::milliseconds(3));
  EXPECT_EQ(w0.lwp, 0);
  EXPECT_EQ(w0.windows, 2u);
  ASSERT_EQ(w0.by_lock.count("runq"), 1u);
  EXPECT_EQ(w0.by_lock.at("runq"), sim::milliseconds(3));

  const TaskCharge& w1 = a.tasks[1];
  EXPECT_EQ(w1.label, "fg/worker1");
  EXPECT_EQ(w1.total, sim::milliseconds(3));
  EXPECT_EQ(w1.lhp, 0);
  EXPECT_EQ(w1.lwp, sim::milliseconds(2));
  ASSERT_EQ(w1.by_lock.count("flock"), 1u);
  EXPECT_EQ(w1.by_lock.at("flock"), sim::milliseconds(2));
}

TEST(ObsAttribution, IdleVcpuWindowsGoUncharged) {
  TraceBuilder t;
  // vCPU 2 never ran a guest task (no kGuestSwitch): 1ms preempted.
  t.add(sim::milliseconds(3), TraceKind::kHvPreempt, 2, 1);
  t.add(sim::milliseconds(4), TraceKind::kHvSchedule, 2, 1);
  const AttributionResult a = attribute(t.records(), two_vm_meta());
  EXPECT_EQ(a.total_steal, sim::milliseconds(1));
  EXPECT_EQ(a.charged, 0);
  EXPECT_EQ(a.uncharged, sim::milliseconds(1));
  EXPECT_TRUE(a.tasks.empty());
}

TEST(ObsAttribution, BlockCancelsOpenWindow) {
  TraceBuilder t;
  t.add(sim::milliseconds(1), TraceKind::kGuestSwitch, 0, 101);
  // Woken but blocked again before getting a pCPU: not steal.
  t.add(sim::milliseconds(2), TraceKind::kHvWake, 0, 0);
  t.add(sim::milliseconds(3), TraceKind::kHvBlock, 0, 0);
  const AttributionResult a = attribute(t.records(), two_vm_meta());
  EXPECT_EQ(a.total_steal, 0);
  EXPECT_TRUE(a.tasks.empty());
}

TEST(ObsAttribution, TruncatedHeadIsExplicitAndNeverMischarged) {
  TraceBuilder t;
  // The ring wrapped: the kHvPreempt that opened vCPU 0's window was
  // dropped; the snapshot starts mid-window at 5ms.
  t.add(sim::milliseconds(5), TraceKind::kGuestSwitch, 0, 101);
  t.add(sim::milliseconds(6), TraceKind::kHvSchedule, 0, 0);
  TraceMeta m = two_vm_meta();
  m.dropped = 3;
  m.total_recorded = 5;
  const AttributionResult a = attribute(t.records(), m);
  // The head is reported, and the half-open window is not charged.
  EXPECT_EQ(a.head_truncated_at, sim::milliseconds(5));
  EXPECT_EQ(a.total_steal, 0);
  EXPECT_TRUE(a.tasks.empty());
}

TEST(ObsAttribution, LwpClassificationWinsOverStaleLhp) {
  TraceBuilder t;
  t.add(sim::milliseconds(1), TraceKind::kGuestSwitch, 0, 101);
  // Both classifications land before the preempt; the later one (LWP,
  // higher seq) must win.
  t.add(sim::milliseconds(2), TraceKind::kLhp, 0, 0, "runq", 101);
  t.add(sim::milliseconds(2), TraceKind::kLwp, 0, 0, "flock", 101);
  t.add(sim::milliseconds(2), TraceKind::kHvPreempt, 0, 0);
  t.add(sim::milliseconds(3), TraceKind::kHvSchedule, 0, 0);
  const AttributionResult a = attribute(t.records(), two_vm_meta());
  ASSERT_EQ(a.tasks.size(), 1u);
  EXPECT_EQ(a.tasks[0].lwp, sim::milliseconds(1));
  EXPECT_EQ(a.tasks[0].lhp, 0);
  EXPECT_EQ(a.tasks[0].by_lock.at("flock"), sim::milliseconds(1));
}

TEST(ObsAttribution, ReportRenderingIsWellFormed) {
  TraceBuilder t;
  t.add(sim::milliseconds(1), TraceKind::kGuestSwitch, 0, 101);
  t.add(sim::milliseconds(2), TraceKind::kLhp, 0, 0, "runq", 101);
  t.add(sim::milliseconds(2), TraceKind::kHvPreempt, 0, 0);
  t.add(sim::milliseconds(5), TraceKind::kHvSchedule, 0, 0);
  TraceMeta m = two_vm_meta();
  m.dropped = 1;
  const AttributionResult a = attribute(t.records(), m);

  std::ostringstream os;
  exp::print_attribution(os, a);
  const std::string text = os.str();
  EXPECT_NE(text.find("fg/worker0"), std::string::npos) << text;
  EXPECT_NE(text.find("head truncated"), std::string::npos) << text;

  const std::string json = exp::attribution_json(a);
  EXPECT_NE(json.find("\"label\":\"fg/worker0\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"runq\":3000000"), std::string::npos) << json;
  EXPECT_NE(json.find("\"coverage\":"), std::string::npos) << json;
}

TEST(ObsAttribution, TwoVmScenarioChargesMeasuredSteal) {
  // End-to-end: a real 2-VM interference run. The sum of the attribution
  // windows must reconstruct the steal time the runstate accounting
  // measured, and nearly all of it must land on specific tasks (the hog
  // keeps the bg lane busy, the fg workers keep theirs).
  exp::ScenarioConfig cfg;
  cfg.fg = "blackscholes";
  cfg.fg_threads = 2;
  cfg.n_vcpus = 2;
  cfg.n_pcpus = 2;
  cfg.strategy = core::Strategy::kBaseline;
  cfg.work_scale = 0.05;
  cfg.seed = 7;
  cfg.trace_capacity = 1 << 20;  // large enough that nothing drops

  exp::TraceDump dump;
  const exp::RunResult r = exp::run_scenario(cfg, &dump);
  ASSERT_TRUE(r.finished);
  ASSERT_EQ(dump.meta.dropped, 0u);

  const AttributionResult a = attribute(dump.records, dump.meta);
  EXPECT_EQ(a.head_truncated_at, -1);
  EXPECT_GT(a.total_steal, 0);
  EXPECT_EQ(a.charged + a.uncharged, a.total_steal);
  // >= 95% of the steal is charged to named tasks (acceptance criterion).
  EXPECT_GE(a.coverage(), 0.95) << "charged " << a.charged << " of "
                                << a.total_steal;
  ASSERT_FALSE(a.tasks.empty());
  for (const TaskCharge& c : a.tasks) {
    EXPECT_NE(c.label.find('/'), std::string::npos) << c.label;
    EXPECT_GT(c.windows, 0u);
  }
}

}  // namespace
}  // namespace irs::obs
