// Unit tests for the observability substrate: sharded counters, the batched
// trace pipeline (staging buffers over the shared ring), ring wrap-around
// accounting, owned trace notes, and the typed snapshot query helper.
#include "src/obs/counters.h"

#include <gtest/gtest.h>

#include <string>

#include "src/obs/trace_buffer.h"
#include "src/sim/trace.h"

namespace irs::obs {
namespace {

// ---------------------------------------------------------------------------
// Counters
// ---------------------------------------------------------------------------

TEST(ObsCounters, FoldSumsAcrossShards) {
  Counters c(4);
  c.inc(0, Cnt::kHvCtxSwitches);
  c.inc(1, Cnt::kHvCtxSwitches, 10);
  c.inc(3, Cnt::kHvCtxSwitches, 100);
  EXPECT_EQ(c.at(0, Cnt::kHvCtxSwitches), 1);
  EXPECT_EQ(c.at(1, Cnt::kHvCtxSwitches), 10);
  EXPECT_EQ(c.at(2, Cnt::kHvCtxSwitches), 0);
  EXPECT_EQ(c.fold(Cnt::kHvCtxSwitches), 111);
  EXPECT_EQ(c.fold_u(Cnt::kHvCtxSwitches), 111u);
  EXPECT_EQ(c.fold(Cnt::kHvPreemptions), 0);  // other counters untouched
}

TEST(ObsCounters, IncAutoGrowsShards) {
  Counters c(1);
  EXPECT_EQ(c.n_shards(), 1u);
  c.inc(7, Cnt::kSaSent, 3);
  EXPECT_GE(c.n_shards(), 8u);
  EXPECT_EQ(c.at(7, Cnt::kSaSent), 3);
  EXPECT_EQ(c.fold(Cnt::kSaSent), 3);
}

TEST(ObsCounters, CountersAreIndependentWithinAShard) {
  Counters c(2);
  c.inc(1, Cnt::kSaSent, 5);
  c.inc(1, Cnt::kSaAcked, 4);
  c.inc(1, Cnt::kSaDelayTotalNs, 123456);
  EXPECT_EQ(c.at(1, Cnt::kSaSent), 5);
  EXPECT_EQ(c.at(1, Cnt::kSaAcked), 4);
  EXPECT_EQ(c.at(1, Cnt::kSaDelayTotalNs), 123456);
}

TEST(ObsCounters, ResetZeroesEveryShard) {
  Counters c(3);
  c.inc(0, Cnt::kWorkUnits, 9);
  c.inc(2, Cnt::kWorkUnits, 9);
  c.reset();
  EXPECT_EQ(c.fold(Cnt::kWorkUnits), 0);
  EXPECT_EQ(c.n_shards(), 3u);  // shard count survives a reset
}

// ---------------------------------------------------------------------------
// Ring wrap-around accounting
// ---------------------------------------------------------------------------

TEST(TraceRing, WrapIsDetectable) {
  sim::Trace t(4);
  for (int i = 0; i < 10; ++i) {
    t.record(i, sim::TraceKind::kUser, i, -1);
  }
  EXPECT_EQ(t.total_recorded(), 10u);
  EXPECT_EQ(t.dropped(), 6u);
  const auto snap = t.snapshot();
  ASSERT_EQ(snap.size(), 4u);
  EXPECT_EQ(snap.front().a, 6);  // oldest surviving record
  EXPECT_EQ(snap.back().a, 9);
  EXPECT_NE(t.dump().find("truncated"), std::string::npos);
}

TEST(TraceRing, NoWrapMeansNoDrops) {
  sim::Trace t(16);
  t.record(1, sim::TraceKind::kUser, 0, 0);
  EXPECT_EQ(t.dropped(), 0u);
  EXPECT_EQ(t.total_recorded(), 1u);
  EXPECT_EQ(t.dump().find("truncated"), std::string::npos);
}

TEST(TraceRing, ClearResetsAccounting) {
  sim::Trace t(2);
  for (int i = 0; i < 5; ++i) t.record(i, sim::TraceKind::kUser, i, -1);
  t.clear();
  EXPECT_EQ(t.dropped(), 0u);
  EXPECT_EQ(t.total_recorded(), 0u);
  EXPECT_TRUE(t.snapshot().empty());
}

// ---------------------------------------------------------------------------
// TraceNote ownership
// ---------------------------------------------------------------------------

TEST(TraceNote, OwnsItsCharacters) {
  // The old `const char*` field dangled when the producer's string died;
  // the note must survive the source buffer.
  sim::Trace t(8);
  {
    std::string ephemeral = "steal";
    t.record(0, sim::TraceKind::kHvSchedule, 0, 0, ephemeral.c_str());
    ephemeral.assign("XXXXXXXXXXXXXXXXXXXXXXXX");  // clobber the storage
  }
  const auto snap = t.snapshot();
  ASSERT_EQ(snap.size(), 1u);
  EXPECT_TRUE(snap[0].note == "steal");
}

TEST(TraceNote, TruncatesLongNotes) {
  const sim::TraceNote n("0123456789abcdefGHIJ");
  EXPECT_STREQ(n.c_str(), "0123456789abcde");  // kMax = 15 chars
  const sim::TraceNote empty;
  EXPECT_TRUE(empty.empty());
  const sim::TraceNote null_note(nullptr);
  EXPECT_TRUE(null_note.empty());
}

// ---------------------------------------------------------------------------
// Batched staging buffers
// ---------------------------------------------------------------------------

TEST(ObsTraceBuffer, StagesUntilBatchThenFlushes) {
  sim::Trace t(64);
  TraceBuffer buf(&t, /*batch=*/4);
  for (int i = 0; i < 3; ++i) {
    buf.record(i, sim::TraceKind::kUser, i, -1);
  }
  EXPECT_EQ(buf.staged(), 3u);
  EXPECT_EQ(t.total_recorded(), 0u);  // nothing in the ring yet
  buf.record(3, sim::TraceKind::kUser, 3, -1);  // hits the batch size
  EXPECT_EQ(buf.staged(), 0u);
  EXPECT_EQ(t.total_recorded(), 4u);
}

TEST(ObsTraceBuffer, SnapshotFlushesViaHook) {
  sim::Trace t(64);
  TraceBuffer buf(&t, /*batch=*/100);
  buf.record(5, sim::TraceKind::kUser, 1, -1);
  EXPECT_EQ(buf.staged(), 1u);
  const auto snap = t.snapshot();  // must observe staged records
  ASSERT_EQ(snap.size(), 1u);
  EXPECT_EQ(snap[0].when, 5);
  EXPECT_EQ(buf.staged(), 0u);
}

TEST(ObsTraceBuffer, DestructorFlushes) {
  sim::Trace t(64);
  {
    TraceBuffer buf(&t, /*batch=*/100);
    buf.record(1, sim::TraceKind::kUser, 1, -1);
  }
  EXPECT_EQ(t.snapshot().size(), 1u);
}

TEST(ObsTraceBuffer, TwoModulesInterleaveInRecordOrder) {
  // Two buffers with different batch sizes flush blocks into the ring at
  // different times; the snapshot must still read in (when, seq) order —
  // i.e. exactly the order the records were produced.
  sim::Trace t(256);
  TraceBuffer hv_buf(&t, /*batch=*/3);
  TraceBuffer guest_buf(&t, /*batch=*/7);
  for (int i = 0; i < 20; ++i) {
    if (i % 2 == 0) {
      hv_buf.record(i, sim::TraceKind::kHvSchedule, i, -1);
    } else {
      guest_buf.record(i, sim::TraceKind::kGuestSwitch, i, -1);
    }
  }
  const auto snap = t.snapshot();
  ASSERT_EQ(snap.size(), 20u);
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(snap[static_cast<std::size_t>(i)].when, i);
    EXPECT_EQ(snap[static_cast<std::size_t>(i)].a, i);
    EXPECT_EQ(snap[static_cast<std::size_t>(i)].kind,
              i % 2 == 0 ? sim::TraceKind::kHvSchedule
                         : sim::TraceKind::kGuestSwitch);
  }
}

TEST(ObsTraceBuffer, SameTimestampKeepsProductionOrder) {
  sim::Trace t(64);
  TraceBuffer a(&t, /*batch=*/10);
  TraceBuffer b(&t, /*batch=*/2);
  a.record(7, sim::TraceKind::kUser, 1, -1);
  b.record(7, sim::TraceKind::kUser, 2, -1);
  a.record(7, sim::TraceKind::kUser, 3, -1);
  b.record(7, sim::TraceKind::kUser, 4, -1);  // b flushes first (batch 2)
  const auto snap = t.snapshot();
  ASSERT_EQ(snap.size(), 4u);
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(snap[static_cast<std::size_t>(i)].a, i + 1);
  }
}

TEST(ObsTraceBuffer, NullAndDisabledTracesAreNoOps) {
  TraceBuffer null_buf(nullptr);
  EXPECT_FALSE(null_buf.enabled());
  null_buf.record(0, sim::TraceKind::kUser, 0, 0);  // no crash
  EXPECT_EQ(null_buf.staged(), 0u);

  sim::Trace disabled;  // capacity 0
  TraceBuffer buf(&disabled);
  EXPECT_FALSE(buf.enabled());
  buf.record(0, sim::TraceKind::kUser, 0, 0);
  EXPECT_EQ(buf.staged(), 0u);
}

TEST(ObsTraceBuffer, SetBatchFlushesFirst) {
  sim::Trace t(64);
  TraceBuffer buf(&t, /*batch=*/100);
  buf.record(1, sim::TraceKind::kUser, 0, 0);
  buf.set_batch(1);
  EXPECT_EQ(buf.staged(), 0u);
  EXPECT_EQ(t.total_recorded(), 1u);
  buf.record(2, sim::TraceKind::kUser, 0, 0);  // batch 1 = flush-through
  EXPECT_EQ(t.total_recorded(), 2u);
}

// ---------------------------------------------------------------------------
// TraceQuery
// ---------------------------------------------------------------------------

TEST(ObsTraceQuery, FiltersChain) {
  sim::Trace t(64);
  t.record(1, sim::TraceKind::kLhp, 0, 10);
  t.record(2, sim::TraceKind::kLhp, 1, 11);
  t.record(3, sim::TraceKind::kLwp, 0, 12);
  t.record(4, sim::TraceKind::kLhp, 0, 13);

  const TraceQuery q(t);
  EXPECT_EQ(q.size(), 4u);
  EXPECT_EQ(q.of_kind(sim::TraceKind::kLhp).size(), 3u);
  EXPECT_EQ(q.of_kind(sim::TraceKind::kLhp).with_a(0).size(), 2u);
  EXPECT_EQ(q.between(2, 3).size(), 2u);  // bounds inclusive
  EXPECT_EQ(q.with_b(12).first().kind, sim::TraceKind::kLwp);
  EXPECT_TRUE(q.of_kind(sim::TraceKind::kSaSend).empty());
  EXPECT_EQ(q.last().when, 4);
}

}  // namespace
}  // namespace irs::obs
