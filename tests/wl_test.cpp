// Tests for the workload catalogue and behaviour models.
#include <gtest/gtest.h>

#include "src/exp/runner.h"
#include "src/wl/npb.h"
#include "src/wl/parallel_workload.h"
#include "src/wl/parsec.h"
#include "src/wl/registry.h"
#include "src/wl/server.h"
#include "tests/helpers.h"

namespace irs::wl {
namespace {

core::World make_world(int pcpus = 4) {
  core::WorldConfig wc;
  wc.n_pcpus = pcpus;
  wc.seed = 3;
  return core::World(wc);
}

hv::VmConfig pinned4() {
  hv::VmConfig cfg;
  cfg.name = "vm";
  cfg.n_vcpus = 4;
  cfg.pin_map = {0, 1, 2, 3};
  return cfg;
}

TEST(Catalogue, ParsecHasTwelveApps) {
  EXPECT_EQ(parsec_specs().size(), 12u);
  for (const auto& s : parsec_specs()) {
    EXPECT_GT(s.work_per_thread, 0) << s.name;
    EXPECT_GT(s.granularity, 0) << s.name;
    EXPECT_GT(s.memory_intensity, 0.0) << s.name;
  }
}

TEST(Catalogue, NpbHasNineApps) {
  EXPECT_EQ(npb_specs().size(), 9u);
  EXPECT_EQ(npb_names().size(), 9u);
}

TEST(Catalogue, NpbWaitPolicySelectsBarrierKind) {
  EXPECT_EQ(npb_spec("MG", true).sync, SyncType::kBarrierSpinning);
  EXPECT_EQ(npb_spec("MG", false).sync, SyncType::kBarrierBlocking);
}

TEST(Catalogue, PaperCitedShapes) {
  // Shapes the paper states explicitly.
  EXPECT_EQ(parsec_spec("raytrace").sync, SyncType::kWorkSteal);
  EXPECT_EQ(parsec_spec("dedup").sync, SyncType::kPipeline);
  EXPECT_EQ(parsec_spec("dedup").stages, 4);
  EXPECT_EQ(parsec_spec("ferret").sync, SyncType::kPipeline);
  EXPECT_EQ(parsec_spec("ferret").stages, 5);
  EXPECT_EQ(parsec_spec("x264").sync, SyncType::kMutex);
  EXPECT_EQ(parsec_spec("blackscholes").sync, SyncType::kBarrierBlocking);
  // lu coarser than cg (paper: lu ~30s, cg fine-grained).
  EXPECT_GT(npb_spec("LU").granularity, npb_spec("CG").granularity);
}

TEST(Registry, ResolvesAllNames) {
  for (const auto& n : parsec_names()) EXPECT_TRUE(workload_exists(n)) << n;
  for (const auto& n : npb_names()) EXPECT_TRUE(workload_exists(n)) << n;
  EXPECT_TRUE(workload_exists("specjbb"));
  EXPECT_TRUE(workload_exists("ab"));
  EXPECT_TRUE(workload_exists("hog"));
  EXPECT_FALSE(workload_exists("nonexistent"));
}

TEST(Registry, WorkScaleShrinksRuntime) {
  WorkloadOptions small;
  small.work_scale = 0.1;
  auto w = make_workload("blackscholes", small);
  auto* pw = dynamic_cast<ParallelWorkload*>(w.get());
  ASSERT_NE(pw, nullptr);
  EXPECT_EQ(pw->spec().work_per_thread,
            parsec_spec("blackscholes").work_per_thread / 10);
}

TEST(PhasedShape, DerivesRoundsAndPhases) {
  AppSpec spec;
  spec.sync = SyncType::kMutexBarrier;
  spec.work_per_thread = sim::milliseconds(100);
  spec.granularity = sim::milliseconds(1);
  spec.cs_fraction = 0.25;
  const PhasedShape s = make_phased_shape(spec, 4, false, nullptr);
  EXPECT_EQ(s.rounds_per_phase, 4);
  EXPECT_EQ(s.n_phases, 25);  // 100ms / (4 * 1ms)
  EXPECT_EQ(s.cs_len, sim::microseconds(250));
  EXPECT_EQ(s.outside_len, sim::microseconds(750));
}

TEST(PhasedShape, BarrierOnlyHasNoLockSplit) {
  AppSpec spec;
  spec.sync = SyncType::kBarrierBlocking;
  spec.work_per_thread = sim::milliseconds(100);
  spec.granularity = sim::milliseconds(2);
  const PhasedShape s = make_phased_shape(spec, 4, false, nullptr);
  EXPECT_EQ(s.rounds_per_phase, 1);
  EXPECT_EQ(s.cs_len, 0);
  EXPECT_EQ(s.outside_len, sim::milliseconds(2));
  EXPECT_EQ(s.n_phases, 50);
}

class WorkloadRun : public ::testing::TestWithParam<const char*> {};

TEST_P(WorkloadRun, CompletesAloneAndDoesExpectedWork) {
  core::World w = make_world();
  const auto vm = w.add_vm(pinned4(), false);
  WorkloadOptions opts;
  opts.work_scale = 0.1;  // keep tests fast
  auto& wl = w.attach(vm, make_workload(GetParam(), opts));
  w.start();
  ASSERT_TRUE(w.run_until_finished(vm, sim::seconds(30))) << GetParam();
  // Useful compute should be close to threads * scaled work (pipeline apps
  // have stages*threads tasks; just require non-trivial progress).
  EXPECT_GT(wl.useful_compute(), 0);
  EXPECT_GT(wl.progress(), 0.0);
  for (const guest::Task* t : wl.tasks()) {
    EXPECT_TRUE(t->finished()) << t->name();
    EXPECT_EQ(t->locks_held, 0) << t->name();
  }
}

INSTANTIATE_TEST_SUITE_P(Parsec, WorkloadRun,
                         ::testing::Values("blackscholes", "dedup",
                                           "streamcluster", "canneal",
                                           "fluidanimate", "vips", "bodytrack",
                                           "ferret", "swaptions", "x264",
                                           "raytrace", "facesim"));
INSTANTIATE_TEST_SUITE_P(Npb, WorkloadRun,
                         ::testing::Values("BT", "LU", "CG", "EP", "FT", "IS",
                                           "MG", "SP", "UA"));

TEST(WorkloadRun, ParallelAppUsesAllCpusAlone) {
  core::World w = make_world();
  const auto vm = w.add_vm(pinned4(), false);
  WorkloadOptions opts;
  opts.work_scale = 0.2;
  auto& wl = w.attach(vm, make_workload("blackscholes", opts));
  w.start();
  ASSERT_TRUE(w.run_until_finished(vm, sim::seconds(10)));
  // 4 threads, 4 vCPUs: makespan close to per-thread work.
  const double work_s =
      sim::to_sec(parsec_spec("blackscholes").work_per_thread) * 0.2;
  EXPECT_LT(sim::to_sec(wl.makespan_end()), work_s * 1.25);
}

TEST(WorkloadRun, PipelineConservesItems) {
  core::World w = make_world();
  const auto vm = w.add_vm(pinned4(), false);
  WorkloadOptions opts;
  opts.work_scale = 0.05;
  auto& wl = w.attach(vm, make_workload("dedup", opts));
  w.start();
  ASSERT_TRUE(w.run_until_finished(vm, sim::seconds(30)));
  // Progress counts items retired at the last stage; every produced item
  // must come out.
  const auto spec = parsec_spec("dedup");
  const int expected_items = static_cast<int>(
      spec.work_per_thread * 0.05 * 4 / spec.granularity);
  EXPECT_NEAR(wl.progress(), expected_items, 1.0);
}

TEST(WorkloadRun, EndlessWorkloadNeverFinishes) {
  core::World w = make_world();
  const auto vm = w.add_vm(pinned4(), false);
  WorkloadOptions opts;
  opts.endless = true;
  auto& wl = w.attach(vm, make_workload("streamcluster", opts));
  w.start();
  w.run_for(sim::seconds(1));
  EXPECT_FALSE(wl.finished());
  const double p1 = wl.progress();
  EXPECT_GT(p1, 0.0);
  w.run_for(sim::seconds(1));
  EXPECT_GT(wl.progress(), p1);  // still making progress
}

TEST(WorkloadRun, HogNeverFinishes) {
  core::World w = make_world(1);
  hv::VmConfig cfg;
  cfg.name = "vm";
  cfg.n_vcpus = 1;
  cfg.pin_map = {0};
  const auto vm = w.add_vm(cfg, false);
  WorkloadOptions opts;
  opts.n_threads = 1;
  auto& wl = w.attach(vm, make_workload("hog", opts));
  w.start();
  w.run_for(sim::seconds(1));
  EXPECT_FALSE(wl.finished());
  EXPECT_NEAR(sim::to_sec(wl.useful_compute()), 1.0, 0.02);
}

TEST(Server, JbbRecordsThroughputAndLatency) {
  core::World w = make_world();
  const auto vm = w.add_vm(pinned4(), false);
  WorkloadOptions opts;
  opts.server_duration = sim::milliseconds(500);
  auto& wl = w.attach(vm, make_workload("specjbb", opts));
  w.start();
  ASSERT_TRUE(w.run_until_finished(vm, sim::seconds(5)));
  auto& jbb = dynamic_cast<JbbWorkload&>(wl);
  EXPECT_GT(jbb.throughput(), 1000.0);  // ~400us txns on 4 cpus
  EXPECT_GT(jbb.latency().count(), 100u);
  EXPECT_GE(jbb.latency().percentile(99), jbb.latency().percentile(50));
}

TEST(Server, AbHasManyMoreThreadsThanCpus) {
  core::World w = make_world();
  const auto vm = w.add_vm(pinned4(), false);
  WorkloadOptions opts;
  opts.server_duration = sim::milliseconds(300);
  auto& wl = w.attach(vm, make_workload("ab", opts));
  w.start();
  ASSERT_TRUE(w.run_until_finished(vm, sim::seconds(60)));
  EXPECT_EQ(wl.tasks().size(), 512u);
  auto& ab = dynamic_cast<AbWorkload&>(wl);
  EXPECT_GT(ab.latency().count(), 500u);
  // Deep queues: p99 latency far above service time.
  EXPECT_GT(ab.latency().percentile(99), sim::milliseconds(20));
}

TEST(Server, JbbSpinLockMakesLhpAttributionNonzeroUnderHog) {
  // The jbb_cs_spin knob turns the critical section into a ticket spinlock
  // whose waiters burn CPU instead of yielding; with a hog preempting the
  // lock holder's vCPU the hypervisor must observe lock-holder preemption.
  exp::ScenarioConfig cfg;
  cfg.fg = "specjbb";
  cfg.strategy = core::Strategy::kBaseline;
  cfg.bg = "hog";
  cfg.n_inter = 4;
  cfg.server_duration = sim::milliseconds(400);
  cfg.jbb_cs_len = sim::microseconds(300);
  cfg.jbb_cs_every = 1;
  cfg.jbb_cs_spin = true;
  const exp::RunResult spin = exp::run_scenario(cfg);
  ASSERT_TRUE(spin.finished);
  EXPECT_GT(spin.throughput, 0.0);
  EXPECT_GT(spin.lhp, 0u);
}

TEST(Histogram, PercentilesAndMean) {
  core::Histogram h;
  for (int i = 1; i <= 100; ++i) h.add(i);
  EXPECT_EQ(h.count(), 100u);
  EXPECT_EQ(h.mean(), 50);
  EXPECT_EQ(h.percentile(0), 1);
  EXPECT_EQ(h.percentile(100), 100);
  EXPECT_NEAR(static_cast<double>(h.percentile(50)), 50.0, 1.0);
  EXPECT_NEAR(static_cast<double>(h.percentile(99)), 99.0, 1.0);
  EXPECT_EQ(h.max(), 100);
  h.clear();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.percentile(50), 0);
}

TEST(SyncTypeNames, AllDistinct) {
  EXPECT_STREQ(sync_type_name(SyncType::kWorkSteal), "work-steal");
  EXPECT_STRNE(sync_type_name(SyncType::kBarrierBlocking),
               sync_type_name(SyncType::kBarrierSpinning));
}

}  // namespace
}  // namespace irs::wl
