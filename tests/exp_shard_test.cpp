// Sharded-sweep tests: shard planning, the NDJSON shard format, the
// cross-shard bit-identity guarantee (a merged multi-shard sweep equals the
// single-process sweep in every metric and sampler digest), the merge
// verifier's fault taxonomy, and a byte-for-byte golden merge.
//
// Regenerate the golden fixtures after an intentional format change with
//   IRS_REGEN_GOLDEN=1 ./irs_tests --gtest_filter=ShardGolden.*
#include "src/exp/shard.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "src/exp/report.h"
#include "src/exp/runner.h"
#include "src/exp/sweep.h"
#include "src/obs/forensics.h"
#include "src/obs/sampler.h"
#include "src/obs/slo.h"

namespace irs::exp {
namespace {

// ---------------------------------------------------------------------------
// Fixtures
// ---------------------------------------------------------------------------

/// Deterministic synthetic result for run `i`: every field nonzero and
/// i-dependent, doubles chosen to be unrepresentable in short decimal so
/// the round-trip formatting is actually exercised.
RunResult synth(std::uint64_t i) {
  RunResult r;
  r.finished = true;
  r.fg_makespan = static_cast<sim::Duration>(1000000 + 7 * i);
  r.fg_util_vs_fair = 0.1 + 0.001 * static_cast<double>(i);
  r.fg_efficiency = 1.0 / 3.0 + static_cast<double>(i);
  r.bg_progress_rate = 123.456 * static_cast<double>(i + 1);
  r.throughput = (i % 2) != 0 ? 1e6 / 7.0 : 0.0;
  r.lat_mean = static_cast<sim::Duration>(5000 * i);
  r.lat_p99 = static_cast<sim::Duration>(9000 * i + 1);
  r.lat_p999 = static_cast<sim::Duration>(9990 * i + 3);
  r.lhp = 11 * i;
  r.lwp = 13 * i;
  r.irs_migrations = i;
  r.sa_sent = 100 + i;
  r.sa_acked = 90 + i;
  r.sa_delay_avg = static_cast<sim::Duration>(777 + i);
  r.sampler_digest = 0x9e3779b97f4a7c15ULL * (i + 1);
  r.trace_dropped = i % 3;  // runs 1, 2 mod 3 carry a truncated-ring flag
  r.trace_total_recorded = 10000 + i;
  // A small but fully-populated SLO block so the shard round-trip covers
  // histogram buckets, windows, and the digest.
  obs::SloTracker t;
  const std::size_t cls = t.add_class(
      "jbb", {/*threshold=*/sim::milliseconds(10), 0.999});
  for (std::uint64_t k = 0; k < 40; ++k) {
    t.record(cls, static_cast<sim::Time>(k * sim::milliseconds(2)),
             static_cast<sim::Duration>(sim::microseconds(300) +
                                        997 * (k + i) * (k + i)));
  }
  t.flush(sim::milliseconds(80));
  r.slo = t.result();
  r.slo_digest = r.slo.digest();
  // A hand-built forensics block (every field nonzero and i-dependent) so
  // shard lines, merge, and the golden fixture cover the cause histograms,
  // violating windows, and the forensics digest.
  obs::ForensicsResult f;
  f.window = sim::milliseconds(30);
  f.head_truncated_at =
      (i % 3) != 0 ? static_cast<sim::Time>(sim::microseconds(50) * i) : -1;
  obs::ForensicsClassResult fc;
  fc.name = "jbb";
  fc.spec = obs::SloSpec{sim::milliseconds(10), 0.999};
  for (std::uint64_t k = 0; k < 20; ++k) {
    for (int c = 0; c < obs::kNumCauses; ++c) {
      fc.causes[c].add(static_cast<sim::Duration>(131 * (k + i) * (c + 1)));
    }
  }
  fc.spans = 20;
  fc.truncated = i % 3;
  fc.open = i % 2;
  obs::ForensicsWindow w;
  w.index = static_cast<std::int64_t>(i + 1);
  w.requests = 20;
  w.violations = 3 + i % 5;
  for (int c = 0; c < obs::kNumCauses; ++c) {
    w.causes[c] = static_cast<sim::Duration>(1000 * (c + 1) + 17 * i);
  }
  fc.windows.push_back(w);
  f.classes.push_back(std::move(fc));
  r.forensics = std::move(f);
  r.forensics_digest = r.forensics.digest();
  // A synthetic front-end conservation ledger (every counter nonzero and
  // i-dependent, the conservation identity intact) so shard lines, merge,
  // and the golden fixture cover the frontend block and its digest.
  obs::FrontendResult fe;
  fe.completed = 100 + i;
  fe.tail_dropped = 5 + i % 3;
  fe.admit_rejected = 2 + i % 2;
  fe.shed = 3 + i % 4;
  fe.in_flight = 1 + i % 2;
  fe.accepted = fe.completed + fe.in_flight;
  fe.arrivals = fe.accepted + fe.tail_dropped + fe.admit_rejected + fe.shed;
  fe.conn_setups = 10 + i;
  fe.keepalive_reuses = 90 + 2 * i;
  fe.max_queue_depth = 7 + i;
  fe.queue_wait_total = static_cast<sim::Duration>(123457 * (i + 1));
  fe.queue_wait_max = static_cast<sim::Duration>(90001 + 11 * i);
  r.frontend = fe;
  r.frontend_digest = r.frontend.digest();
  // A synthetic cluster placement ledger (every counter i-dependent, the
  // conservation identities intact) so shard lines, merge, and the golden
  // fixture cover the cluster block and its digest.
  obs::ClusterResult cl;
  cl.n_hosts = 2;
  cl.policy = static_cast<std::uint32_t>(i % 3);
  cl.migratable = 2 + i % 2;
  cl.vms = cl.migratable + 1;
  cl.decisions = 30 + i;
  cl.migrations = i % 2;
  cl.downtime_total = static_cast<sim::Duration>(20000000 * cl.migrations);
  obs::ClusterHostLedger h0;
  h0.placed = 1;
  h0.migr_out = cl.migrations;
  h0.active_end = h0.placed - h0.migr_out;
  h0.samples = 300 + i;
  h0.lhp = 17 * i;
  h0.lwp = 19 * i;
  h0.steal = static_cast<sim::Duration>(997 * (i + 1));
  obs::ClusterHostLedger h1;
  h1.placed = cl.vms - 1;
  h1.migr_in = cl.migrations;
  h1.active_end = h1.placed + h1.migr_in;
  h1.samples = 300 + i;
  h1.lhp = 23 * i;
  h1.lwp = 29 * i;
  h1.steal = static_cast<sim::Duration>(1009 * (i + 1));
  cl.hosts = {h0, h1};
  r.cluster = cl;
  r.cluster_digest = r.cluster.digest();
  return r;
}

ShardHeader header(int shard, int n_shards, std::uint64_t total) {
  ShardHeader h;
  h.shard = shard;
  h.n_shards = n_shards;
  h.total_runs = total;
  h.fig = "smoke";
  h.seeds = 2;
  return h;
}

/// A well-formed shard stream carrying synth(i) for every owned index.
std::string synth_stream(int shard, int n_shards, std::uint64_t total) {
  std::string s = shard_header_json(header(shard, n_shards, total)) + "\n";
  for (const std::size_t i : shard_run_indices(total, shard, n_shards)) {
    s += shard_line_json(i, synth(i)) + "\n";
  }
  return s;
}

/// The sampler-armed determinism grid: small enough for CI, sampling on so
/// digests are nonzero and covered by the identity check.
std::vector<ScenarioConfig> sampled_grid() {
  std::vector<ScenarioConfig> cfgs;
  for (const char* app : {"blackscholes", "streamcluster"}) {
    for (const auto strategy :
         {core::Strategy::kBaseline, core::Strategy::kIrs}) {
      ScenarioConfig cfg;
      cfg.fg = app;
      cfg.strategy = strategy;
      cfg.work_scale = 0.05;
      cfg.seed = 42;
      cfg.sample_period = obs::Sampler::kDefaultPeriod;
      for (const auto& seeded : seed_grid(cfg, 2)) cfgs.push_back(seeded);
    }
  }
  return cfgs;
}

// ---------------------------------------------------------------------------
// Shard planning
// ---------------------------------------------------------------------------

TEST(ShardPlan, ParseSpecAcceptsValidRejectsMalformed) {
  ShardSpec s;
  ASSERT_TRUE(parse_shard_spec("2/8", &s));
  EXPECT_EQ(s.index, 2);
  EXPECT_EQ(s.count, 8);
  ASSERT_TRUE(parse_shard_spec("0/1", &s));
  EXPECT_EQ(s.index, 0);
  EXPECT_EQ(s.count, 1);
  for (const char* bad : {"", "2", "/8", "2/", "8/2", "8/8", "2/0", "a/b",
                          "-1/4", "1/4/2", "1 /4", "0x1/4"}) {
    EXPECT_FALSE(parse_shard_spec(bad, &s)) << bad;
  }
}

TEST(ShardPlan, RunIndicesPartitionTheGrid) {
  constexpr std::size_t kRuns = 17;
  constexpr int kShards = 5;
  std::set<std::size_t> seen;
  for (int s = 0; s < kShards; ++s) {
    const auto owned = shard_run_indices(kRuns, s, kShards);
    for (std::size_t j = 0; j < owned.size(); ++j) {
      EXPECT_EQ(owned[j] % kShards, static_cast<std::size_t>(s));
      if (j > 0) {
        EXPECT_LT(owned[j - 1], owned[j]);  // ascending
      }
      EXPECT_TRUE(seen.insert(owned[j]).second) << owned[j];  // disjoint
    }
  }
  EXPECT_EQ(seen.size(), kRuns);  // complete
  // Degenerate shapes.
  EXPECT_TRUE(shard_run_indices(0, 0, 4).empty());
  EXPECT_TRUE(shard_run_indices(3, 3, 4).empty());  // more shards than runs
  EXPECT_TRUE(shard_run_indices(10, 4, 4).empty());  // out-of-range shard
}

TEST(ShardPlan, ShardGridSelectsOwnedConfigs) {
  std::vector<ScenarioConfig> cfgs(7);
  for (std::size_t i = 0; i < cfgs.size(); ++i) cfgs[i].seed = 1000 + i;
  std::size_t total = 0;
  for (int s = 0; s < 3; ++s) {
    const auto sub = shard_grid(cfgs, s, 3);
    const auto owned = shard_run_indices(cfgs.size(), s, 3);
    ASSERT_EQ(sub.size(), owned.size());
    for (std::size_t j = 0; j < sub.size(); ++j) {
      EXPECT_EQ(sub[j].seed, cfgs[owned[j]].seed);
    }
    total += sub.size();
  }
  EXPECT_EQ(total, cfgs.size());
}

// ---------------------------------------------------------------------------
// NDJSON shard format round-trips
// ---------------------------------------------------------------------------

TEST(ShardFormat, HeaderRoundTrips) {
  const ShardHeader h = header(3, 8, 96);
  ShardHeader parsed;
  std::string err;
  ASSERT_TRUE(parse_shard_header(shard_header_json(h), &parsed, &err)) << err;
  EXPECT_EQ(parsed.shard, h.shard);
  EXPECT_EQ(parsed.n_shards, h.n_shards);
  EXPECT_EQ(parsed.total_runs, h.total_runs);
  EXPECT_EQ(parsed.fig, h.fig);
  EXPECT_EQ(parsed.seeds, h.seeds);
}

TEST(ShardFormat, HeaderRejectsGarbageAndBadRanges) {
  ShardHeader h;
  std::string err;
  EXPECT_FALSE(parse_shard_header("not json", &h, &err));
  EXPECT_FALSE(parse_shard_header("[1,2]", &h, &err));
  EXPECT_FALSE(parse_shard_header(R"({"shard":1,"n_shards":4})", &h, &err));
  EXPECT_FALSE(parse_shard_header(
      R"({"shard":4,"n_shards":4,"total_runs":8})", &h, &err));
  EXPECT_FALSE(parse_shard_header(
      R"({"shard":-1,"n_shards":4,"total_runs":8})", &h, &err));
}

TEST(ShardFormat, LineRoundTripsBitIdenticalAndByteIdentical) {
  for (const std::uint64_t i : {0ULL, 1ULL, 5ULL, 12345ULL}) {
    const RunResult r = synth(i);
    const std::string line = shard_line_json(i, r);
    std::size_t run = 0;
    RunResult parsed;
    std::string err;
    ASSERT_TRUE(parse_shard_line(line, &run, &parsed, &err)) << err;
    EXPECT_EQ(run, i);
    EXPECT_TRUE(results_identical(r, parsed));
    // Re-emitting the parsed result reproduces the exact bytes.
    EXPECT_EQ(shard_line_json(run, parsed), line);
  }
}

// ---------------------------------------------------------------------------
// Cross-shard determinism: the headline guarantee
// ---------------------------------------------------------------------------

/// Full-grid sweep vs. 3 shards run separately, serialized to NDJSON,
/// merged — every metric and sampler digest bit-identical, and invariant
/// to the worker thread count on both sides.
TEST(ShardDeterminism, MergedThreeWaySplitMatchesFullSweepBitForBit) {
  const auto cfgs = sampled_grid();
  const auto full_serial = run_sweep(cfgs, /*n_threads=*/1);
  const auto full_parallel = run_sweep(cfgs, /*n_threads=*/4);
  ASSERT_EQ(full_serial.size(), cfgs.size());

  constexpr int kShards = 3;
  std::vector<std::pair<std::string, std::string>> files;
  for (int s = 0; s < kShards; ++s) {
    const auto owned = shard_run_indices(cfgs.size(), s, kShards);
    // Alternate thread counts across shards: placement must not matter.
    const auto results =
        run_sweep(shard_grid(cfgs, s, kShards), /*n_threads=*/1 + s % 2 * 3);
    ASSERT_EQ(results.size(), owned.size());
    ShardHeader h = header(s, kShards, cfgs.size());
    std::string content = shard_header_json(h) + "\n";
    for (std::size_t j = 0; j < owned.size(); ++j) {
      content += shard_line_json(owned[j], results[j]) + "\n";
    }
    files.emplace_back("shard" + std::to_string(s) + ".ndjson", content);
  }

  const MergeReport rep = merge_shard_streams(files);
  ASSERT_TRUE(rep.ok()) << merge_summary_json(rep);
  ASSERT_EQ(rep.merged, cfgs.size());
  ASSERT_EQ(rep.results.size(), cfgs.size());
  for (std::size_t i = 0; i < cfgs.size(); ++i) {
    SCOPED_TRACE(i);
    // Sampling was armed, so the digest is a live part of the check.
    EXPECT_NE(full_serial[i].sampler_digest, 0u);
    EXPECT_TRUE(results_identical(full_serial[i], full_parallel[i]));
    EXPECT_TRUE(results_identical(full_serial[i], rep.results[i]));
  }
}

// ---------------------------------------------------------------------------
// Merge fault taxonomy (every anomaly has a status bit and a repair)
// ---------------------------------------------------------------------------

TEST(ShardMerge, CleanTwoShardMergeIsOk) {
  const MergeReport rep = merge_shard_streams(
      {{"s0", synth_stream(0, 2, 6)}, {"s1", synth_stream(1, 2, 6)}});
  EXPECT_EQ(rep.status, kMergeOk);
  EXPECT_TRUE(rep.ok());
  EXPECT_EQ(rep.merged, 6u);
  EXPECT_EQ(rep.fig, "smoke");
  EXPECT_EQ(rep.seeds, 2);
  for (std::uint64_t i = 0; i < 6; ++i) {
    EXPECT_TRUE(results_identical(rep.results[i], synth(i))) << i;
  }
  EXPECT_TRUE(repair_plan(rep).empty());
}

TEST(ShardMerge, TruncatedTailIsDiscardedAndReportedNeverSilent) {
  // Kill shard 1 mid-write: drop the final newline so the last line is torn.
  std::string s1 = synth_stream(1, 2, 6);
  s1.resize(s1.size() - 3);
  const MergeReport rep =
      merge_shard_streams({{"s0", synth_stream(0, 2, 6)}, {"s1", s1}});
  EXPECT_EQ(rep.status, kMergeTruncated | kMergeMissingRuns);
  ASSERT_EQ(rep.truncated_files.size(), 1u);
  EXPECT_EQ(rep.truncated_files[0], "s1");
  ASSERT_EQ(rep.missing.size(), 1u);
  EXPECT_EQ(rep.missing[0], 5u);  // shard 1 of 2 owns 1,3,5; 5 was torn
  EXPECT_EQ(rep.merged, 5u);
  // The repair plan names the exact rerun.
  EXPECT_EQ(repair_plan(rep),
            "irs_sweep --fig smoke --seeds 2 --shard 1/2 --runs 5 "
            "--ndjson rerun-shard1.ndjson\n");
}

TEST(ShardMerge, DuplicateIdenticalLineIsFlaggedButKept) {
  std::string s0 = synth_stream(0, 2, 6);
  s0 += shard_line_json(4, synth(4)) + "\n";  // retried upload, same bits
  const MergeReport rep =
      merge_shard_streams({{"s0", s0}, {"s1", synth_stream(1, 2, 6)}});
  EXPECT_EQ(rep.status, kMergeDuplicate);
  ASSERT_EQ(rep.duplicate_runs.size(), 1u);
  EXPECT_EQ(rep.duplicate_runs[0], 4u);
  EXPECT_EQ(rep.merged, 6u);  // nothing lost
  EXPECT_TRUE(repair_plan(rep).empty());  // nothing to rerun
}

TEST(ShardMerge, ConflictingDigestBreaksTheMergeAndLandsInThePlan) {
  std::string s0 = synth_stream(0, 2, 6);
  RunResult bad = synth(4);
  bad.sampler_digest ^= 1;  // determinism violation: same run, new bits
  s0 += shard_line_json(4, bad) + "\n";  // a retry that reproduced differently
  const MergeReport rep =
      merge_shard_streams({{"s0", s0}, {"s1", synth_stream(1, 2, 6)}});
  EXPECT_EQ(rep.status, kMergeConflict);
  ASSERT_EQ(rep.conflict_runs.size(), 1u);
  EXPECT_EQ(rep.conflict_runs[0], 4u);
  // First occurrence wins in the merged vector...
  EXPECT_TRUE(results_identical(rep.results[4], synth(4)));
  // ...but the run is rerun to arbitrate.
  EXPECT_EQ(repair_plan(rep),
            "irs_sweep --fig smoke --seeds 2 --shard 0/2 --runs 4 "
            "--ndjson rerun-shard0.ndjson\n");
  // The error note names both digests.
  ASSERT_EQ(rep.errors.size(), 1u);
  EXPECT_NE(rep.errors[0].find("conflicting results"), std::string::npos);
}

TEST(ShardMerge, EntirelyMissingShardFileYieldsWholeShardRerun) {
  const MergeReport rep =
      merge_shard_streams({{"s0", synth_stream(0, 2, 6)}});
  EXPECT_EQ(rep.status, kMergeMissingRuns);
  EXPECT_EQ(rep.missing, (std::vector<std::uint64_t>{1, 3, 5}));
  ASSERT_EQ(rep.missing_shards.size(), 1u);
  EXPECT_EQ(rep.missing_shards[0], 1);
  // Whole shard lost: the plan omits --runs (rerun everything it owns).
  EXPECT_EQ(repair_plan(rep),
            "irs_sweep --fig smoke --seeds 2 --shard 1/2 "
            "--ndjson rerun-shard1.ndjson\n");
}

TEST(ShardMerge, OutOfOrderLinesMergeButAreFlagged) {
  // Hand-reordered file: content is keyed by run index, so the merge still
  // recovers everything, but the disorder is surfaced.
  std::string s0 = shard_header_json(header(0, 2, 6)) + "\n";
  for (const std::uint64_t i : {2ULL, 0ULL, 4ULL}) {
    s0 += shard_line_json(i, synth(i)) + "\n";
  }
  const MergeReport rep =
      merge_shard_streams({{"s0", s0}, {"s1", synth_stream(1, 2, 6)}});
  EXPECT_EQ(rep.status, kMergeDisorder);
  EXPECT_EQ(rep.merged, 6u);
  for (std::uint64_t i = 0; i < 6; ++i) {
    EXPECT_TRUE(results_identical(rep.results[i], synth(i))) << i;
  }
}

TEST(ShardMerge, ForeignRunIndexIsDisorder) {
  std::string s0 = synth_stream(0, 2, 6);
  s0 += shard_line_json(3, synth(3)) + "\n";  // 3 belongs to shard 1
  const MergeReport rep =
      merge_shard_streams({{"s0", s0}, {"s1", synth_stream(1, 2, 6)}});
  // The foreign line still merges (it agrees with shard 1's copy, so it is
  // also a duplicate) but the ownership violation is flagged.
  EXPECT_EQ(rep.status, kMergeDisorder | kMergeDuplicate);
  EXPECT_EQ(rep.merged, 6u);
}

TEST(ShardMerge, GarbageLineIsBadFileAndItsRunGoesMissing) {
  std::string s0 = shard_header_json(header(0, 2, 6)) + "\n";
  s0 += shard_line_json(0, synth(0)) + "\n";
  s0 += "{\"run\":2,\"finished\":true}\n";  // truncated field set
  s0 += shard_line_json(4, synth(4)) + "\n";
  const MergeReport rep =
      merge_shard_streams({{"s0", s0}, {"s1", synth_stream(1, 2, 6)}});
  EXPECT_EQ(rep.status, kMergeBadFile | kMergeMissingRuns);
  EXPECT_EQ(rep.missing, (std::vector<std::uint64_t>{2}));
  EXPECT_EQ(rep.merged, 5u);
  ASSERT_EQ(rep.errors.size(), 1u);
  EXPECT_NE(rep.errors[0].find("line 3"), std::string::npos);
}

TEST(ShardMerge, EmptyFileIsBadAndItsShardMissing) {
  const MergeReport rep =
      merge_shard_streams({{"s0", synth_stream(0, 2, 6)}, {"s1", ""}});
  EXPECT_EQ(rep.status, kMergeBadFile | kMergeMissingRuns);
  EXPECT_EQ(rep.missing_shards, (std::vector<int>{1}));
  EXPECT_EQ(rep.missing, (std::vector<std::uint64_t>{1, 3, 5}));
}

TEST(ShardMerge, HeaderDisagreementIsBadFile) {
  // Shard 1 from a *different* grid (other total_runs): refusing to mix is
  // the whole point of self-describing headers.
  const MergeReport rep = merge_shard_streams(
      {{"s0", synth_stream(0, 2, 6)}, {"s1", synth_stream(1, 2, 8)}});
  EXPECT_NE(rep.status & kMergeBadFile, 0);
  ASSERT_GE(rep.errors.size(), 1u);
  EXPECT_NE(rep.errors[0].find("header disagrees"), std::string::npos);
}

TEST(ShardMerge, ExpectOverridesTrumpHeaders) {
  MergeOptions opt;
  opt.expect_runs = 8;   // headers claim 6
  opt.expect_shards = 3;  // headers claim 2
  const MergeReport rep = merge_shard_streams(
      {{"s0", synth_stream(0, 2, 6)}, {"s1", synth_stream(1, 2, 6)}},
      opt);
  EXPECT_EQ(rep.expected_runs, 8u);
  EXPECT_EQ(rep.n_shards, 3);
  EXPECT_NE(rep.status & kMergeMissingRuns, 0);
  EXPECT_EQ(rep.missing, (std::vector<std::uint64_t>{6, 7}));
  EXPECT_EQ(rep.missing_shards, (std::vector<int>{2}));
}

TEST(ShardMerge, UnreadablePathIsBadFile) {
  const MergeReport rep =
      merge_shards({"/nonexistent/definitely-not-here.ndjson"});
  EXPECT_NE(rep.status & kMergeBadFile, 0);
  ASSERT_EQ(rep.errors.size(), 1u);
  EXPECT_NE(rep.errors[0].find("cannot read file"), std::string::npos);
}

TEST(ShardMerge, SummaryJsonCarriesEveryAnomalyList) {
  std::string s0 = synth_stream(0, 2, 6);
  s0.resize(s0.size() - 1);  // torn tail
  const MergeReport rep = merge_shard_streams({{"s0", s0}});
  const std::string json = merge_summary_json(rep);
  EXPECT_NE(json.find("\"status\":"), std::string::npos);
  EXPECT_NE(json.find("\"ok\":false"), std::string::npos);
  EXPECT_NE(json.find("\"missing\":["), std::string::npos);
  EXPECT_NE(json.find("\"missing_shards\":[1]"), std::string::npos);
  EXPECT_NE(json.find("\"truncated\":[\"s0\"]"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Golden merge on a pinned 2-shard fixture
// ---------------------------------------------------------------------------

std::string golden_path(const std::string& name) {
  return std::string(IRS_GOLDEN_DIR) + "/" + name;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

/// The shard inputs, the merged output, and the verification summary of a
/// tiny 2-shard sweep are all pinned byte-for-byte: any drift in the NDJSON
/// schema, double formatting, or summary key order fails here first.
TEST(ShardGolden, TwoShardFixtureMergesByteForByte) {
  const std::string shard0 = synth_stream(0, 2, 4);
  const std::string shard1 = synth_stream(1, 2, 4);
  const MergeReport rep = merge_shard_streams(
      {{"sweep_shard0.ndjson", shard0}, {"sweep_shard1.ndjson", shard1}});
  ASSERT_TRUE(rep.ok()) << merge_summary_json(rep);
  std::ostringstream merged;
  write_merged_ndjson(merged, rep);
  const std::string summary = merge_summary_json(rep);

  const std::vector<std::pair<std::string, const std::string*>> goldens = {
      {"sweep_shard0.ndjson", &shard0},
      {"sweep_shard1.ndjson", &shard1},
      {"sweep_merged.ndjson", nullptr},  // filled below
      {"sweep_merge_summary.json", &summary},
  };
  const std::string merged_str = merged.str();

  if (std::getenv("IRS_REGEN_GOLDEN") != nullptr) {
    for (const auto& [name, content] : goldens) {
      std::ofstream out(golden_path(name), std::ios::binary);
      out << (content != nullptr ? *content : merged_str);
      ASSERT_TRUE(out.good()) << "could not regenerate " << name;
    }
    GTEST_SKIP() << "regenerated sweep_* golden fixtures";
  }

  for (const auto& [name, content] : goldens) {
    const std::string want = read_file(golden_path(name));
    ASSERT_FALSE(want.empty())
        << "missing golden file " << name
        << " (run with IRS_REGEN_GOLDEN=1 to create)";
    EXPECT_EQ(content != nullptr ? *content : merged_str, want)
        << name
        << " drifted from the golden fixture; if intentional, regenerate "
           "with IRS_REGEN_GOLDEN=1";
  }

  // And merging the *golden* inputs (not the in-memory ones) still
  // reproduces the golden merged file: the on-disk fixtures are live.
  const MergeReport from_disk = merge_shard_streams(
      {{"sweep_shard0.ndjson", read_file(golden_path("sweep_shard0.ndjson"))},
       {"sweep_shard1.ndjson",
        read_file(golden_path("sweep_shard1.ndjson"))}});
  ASSERT_TRUE(from_disk.ok());
  std::ostringstream remerged;
  write_merged_ndjson(remerged, from_disk);
  EXPECT_EQ(remerged.str(), read_file(golden_path("sweep_merged.ndjson")));
}

}  // namespace
}  // namespace irs::exp
