// Unit tests for the deterministic RNG.
#include "src/sim/rng.h"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

namespace irs::sim {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Rng, ZeroSeedIsValid) {
  Rng r(0);
  // Must not be stuck at zero (xoshiro all-zero state would be).
  std::set<std::uint64_t> vals;
  for (int i = 0; i < 10; ++i) vals.insert(r.next_u64());
  EXPECT_GT(vals.size(), 5u);
}

TEST(Rng, NextBelowRespectsBound) {
  Rng r(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(r.next_below(17), 17u);
  }
  EXPECT_EQ(r.next_below(0), 0u);
  EXPECT_EQ(r.next_below(1), 0u);
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng r(9);
  double mn = 1.0, mx = 0.0, sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double v = r.next_double();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
    mn = std::min(mn, v);
    mx = std::max(mx, v);
    sum += v;
  }
  EXPECT_LT(mn, 0.01);
  EXPECT_GT(mx, 0.99);
  EXPECT_NEAR(sum / n, 0.5, 0.02);
}

TEST(Rng, UniformCoversRangeInclusive) {
  Rng r(11);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const auto v = r.uniform(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);
}

TEST(Rng, JitteredStaysWithinFraction) {
  Rng r(13);
  const Duration mean = milliseconds(10);
  for (int i = 0; i < 5000; ++i) {
    const Duration v = r.jittered(mean, 0.2);
    EXPECT_GE(v, static_cast<Duration>(mean * 0.8) - 1);
    EXPECT_LE(v, static_cast<Duration>(mean * 1.2) + 1);
  }
}

TEST(Rng, JitteredZeroMeanIsZero) {
  Rng r(13);
  EXPECT_EQ(r.jittered(0, 0.5), 0);
  EXPECT_EQ(r.jittered(-5, 0.5), 0);
}

TEST(Rng, JitteredMeanConverges) {
  Rng r(17);
  const Duration mean = microseconds(100);
  double sum = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += static_cast<double>(r.jittered(mean, 0.3));
  EXPECT_NEAR(sum / n / static_cast<double>(mean), 1.0, 0.02);
}

TEST(Rng, ExponentialMeanConverges) {
  Rng r(19);
  const Duration mean = milliseconds(2);
  double sum = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    const Duration v = r.exponential(mean);
    EXPECT_GE(v, 0);
    sum += static_cast<double>(v);
  }
  EXPECT_NEAR(sum / n / static_cast<double>(mean), 1.0, 0.05);
}

TEST(Rng, ForkedStreamsAreIndependent) {
  Rng parent(23);
  Rng c1 = parent.fork();
  Rng c2 = parent.fork();
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (c1.next_u64() == c2.next_u64()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Rng, ForkIsDeterministic) {
  Rng a(31), b(31);
  Rng ca = a.fork();
  Rng cb = b.fork();
  for (int i = 0; i < 100; ++i) EXPECT_EQ(ca.next_u64(), cb.next_u64());
}

TEST(Rng, ReseedResetsStream) {
  Rng r(5);
  const auto first = r.next_u64();
  r.next_u64();
  r.reseed(5);
  EXPECT_EQ(r.next_u64(), first);
}

}  // namespace
}  // namespace irs::sim
