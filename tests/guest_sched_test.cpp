// Guest kernel scheduling tests: task execution, CFS fairness, wake-up
// placement, idle blocking, spin accounting — all through the public World
// facade with scripted behaviours.
#include <gtest/gtest.h>

#include "tests/helpers.h"

namespace irs {
namespace {

using test::LambdaBehavior;
using test::ScriptedBehavior;
using test::TestWorkload;

core::WorldConfig base_config(int pcpus = 2) {
  core::WorldConfig wc;
  wc.n_pcpus = pcpus;
  wc.seed = 11;
  return wc;
}

hv::VmConfig pinned_vm(const std::string& name, int n) {
  hv::VmConfig cfg;
  cfg.name = name;
  cfg.n_vcpus = n;
  for (int i = 0; i < n; ++i) cfg.pin_map.push_back(i);
  return cfg;
}

TEST(GuestSched, SingleComputeTaskFinishesOnTime) {
  core::World w(base_config(1));
  const auto vm = w.add_vm(pinned_vm("vm", 1), false);
  auto& wl = w.attach(vm, std::make_unique<TestWorkload>(
                              "t", [](guest::GuestKernel& k, TestWorkload& tw) {
                                tw.add_task(k, "a",
                                            test::compute_behavior(
                                                sim::milliseconds(50)));
                              }));
  w.start();
  ASSERT_TRUE(w.run_until_finished(vm, sim::seconds(1)));
  // 50 ms of work plus small modelled overheads.
  EXPECT_GE(wl.makespan_end(), sim::milliseconds(50));
  EXPECT_LT(wl.makespan_end(), sim::milliseconds(52));
  // compute_done includes the context-switch overhead folded into the op.
  EXPECT_GE(wl.tasks()[0]->stats.compute_done, sim::milliseconds(50));
  EXPECT_LE(wl.tasks()[0]->stats.compute_done,
            sim::milliseconds(50) + sim::microseconds(20));
}

TEST(GuestSched, TwoTasksOneCpuShareFairly) {
  core::World w(base_config(1));
  const auto vm = w.add_vm(pinned_vm("vm", 1), false);
  auto& wl = w.attach(
      vm, std::make_unique<TestWorkload>(
              "t", [](guest::GuestKernel& k, TestWorkload& tw) {
                tw.add_task(k, "a", test::hog_behavior(), 0);
                tw.add_task(k, "b", test::hog_behavior(), 0);
              }));
  w.start();
  w.run_for(sim::seconds(2));
  const auto ca = wl.tasks()[0]->stats.compute_done;
  const auto cb = wl.tasks()[1]->stats.compute_done;
  EXPECT_NEAR(sim::to_sec(ca), 1.0, 0.05);
  EXPECT_NEAR(sim::to_sec(cb), 1.0, 0.05);
}

TEST(GuestSched, TasksSpreadAcrossVcpus) {
  core::World w(base_config(2));
  const auto vm = w.add_vm(pinned_vm("vm", 2), false);
  auto& wl = w.attach(
      vm, std::make_unique<TestWorkload>(
              "t", [](guest::GuestKernel& k, TestWorkload& tw) {
                tw.add_task(k, "a", test::hog_behavior(), 0);
                tw.add_task(k, "b", test::hog_behavior(), 1);
              }));
  w.start();
  w.run_for(sim::seconds(1));
  // Both run in parallel at full speed.
  EXPECT_GT(sim::to_sec(wl.tasks()[0]->stats.compute_done), 0.95);
  EXPECT_GT(sim::to_sec(wl.tasks()[1]->stats.compute_done), 0.95);
}

TEST(GuestSched, IdleGuestBlocksItsVcpu) {
  core::World w(base_config(1));
  const auto vm = w.add_vm(pinned_vm("vm", 1), false);
  w.attach(vm, std::make_unique<TestWorkload>(
                   "t", [](guest::GuestKernel& k, TestWorkload& tw) {
                     tw.add_task(k, "a",
                                 test::compute_behavior(sim::milliseconds(5)));
                   }));
  w.start();
  ASSERT_TRUE(w.run_until_finished(vm, sim::seconds(1)));
  w.run_for(sim::milliseconds(50));
  EXPECT_EQ(w.host().vm(vm).vcpu(0).state(), hv::VcpuState::kBlocked);
  // vCPU ran only ~5ms of the elapsed time.
  EXPECT_LT(sim::to_ms(w.host().vm(vm).vcpu(0).time_running(w.engine().now())),
            12.0);
}

TEST(GuestSched, SleepWakesAndContinues) {
  core::World w(base_config(1));
  const auto vm = w.add_vm(pinned_vm("vm", 1), false);
  auto& wl = w.attach(
      vm, std::make_unique<TestWorkload>(
              "t", [](guest::GuestKernel& k, TestWorkload& tw) {
                tw.add_task(
                    k, "a",
                    std::make_unique<ScriptedBehavior>(std::vector<guest::Action>{
                        guest::Action::compute(sim::milliseconds(2)),
                        guest::Action::sleep(sim::milliseconds(20)),
                        guest::Action::compute(sim::milliseconds(2)),
                    }));
              }));
  w.start();
  ASSERT_TRUE(w.run_until_finished(vm, sim::seconds(1)));
  EXPECT_GE(wl.makespan_end(), sim::milliseconds(24));
  EXPECT_LT(wl.makespan_end(), sim::milliseconds(30));
  EXPECT_EQ(wl.tasks()[0]->stats.wakeups, 1u);
}

TEST(GuestSched, WakePrefersPreviousIdleCpu) {
  core::World w(base_config(2));
  const auto vm = w.add_vm(pinned_vm("vm", 2), false);
  auto& wl = w.attach(
      vm, std::make_unique<TestWorkload>(
              "t", [](guest::GuestKernel& k, TestWorkload& tw) {
                tw.add_task(
                    k, "sleeper",
                    std::make_unique<ScriptedBehavior>(
                        std::vector<guest::Action>{
                            guest::Action::compute(sim::milliseconds(1)),
                            guest::Action::sleep(sim::milliseconds(5)),
                            guest::Action::compute(sim::milliseconds(1)),
                        }),
                    1);
              }));
  w.start();
  ASSERT_TRUE(w.run_until_finished(vm, sim::seconds(1)));
  // No reason to migrate: it should stay on CPU 1 throughout.
  EXPECT_EQ(wl.tasks()[0]->cpu(), 1);
  EXPECT_EQ(wl.tasks()[0]->stats.migrations, 0u);
}

TEST(GuestSched, SpinningConsumesCpuWithoutProgress) {
  core::World w(base_config(1));
  const auto vm = w.add_vm(pinned_vm("vm", 1), false);
  auto& wl = w.attach(
      vm, std::make_unique<TestWorkload>(
              "t", [](guest::GuestKernel& k, TestWorkload& tw) {
                auto& lock = tw.sync_ctx().make_spinlock();
                // Task A grabs the lock and holds it while computing.
                tw.add_task(
                    k, "holder",
                    std::make_unique<ScriptedBehavior>(std::vector<guest::Action>{
                        guest::Action::spin_lock(lock),
                        guest::Action::compute(sim::milliseconds(40)),
                        guest::Action::spin_unlock(lock),
                    }),
                    0);
                // Task B spins on it.
                tw.add_task(
                    k, "waiter",
                    std::make_unique<ScriptedBehavior>(std::vector<guest::Action>{
                        guest::Action::compute(sim::milliseconds(1)),
                        guest::Action::spin_lock(lock),
                        guest::Action::spin_unlock(lock),
                    }),
                    0);
              }));
  w.start();
  ASSERT_TRUE(w.run_until_finished(vm, sim::seconds(2)));
  // The waiter burnt real CPU while spinning (they share one CPU, so the
  // holder needs ~80 ms wall; waiter spins roughly half of that).
  EXPECT_GT(sim::to_ms(wl.tasks()[1]->stats.spin_time), 10.0);
}

TEST(GuestSched, MutexBlocksInsteadOfBurning) {
  core::World w(base_config(1));
  const auto vm = w.add_vm(pinned_vm("vm", 1), false);
  auto& wl = w.attach(
      vm, std::make_unique<TestWorkload>(
              "t", [](guest::GuestKernel& k, TestWorkload& tw) {
                auto& m = tw.sync_ctx().make_mutex();
                tw.add_task(
                    k, "holder",
                    std::make_unique<ScriptedBehavior>(std::vector<guest::Action>{
                        guest::Action::lock(m),
                        guest::Action::compute(sim::milliseconds(40)),
                        guest::Action::unlock(m),
                    }),
                    0);
                tw.add_task(
                    k, "waiter",
                    std::make_unique<ScriptedBehavior>(std::vector<guest::Action>{
                        guest::Action::compute(sim::milliseconds(1)),
                        guest::Action::lock(m),
                        guest::Action::unlock(m),
                    }),
                    0);
              }));
  w.start();
  ASSERT_TRUE(w.run_until_finished(vm, sim::seconds(1)));
  // Blocking waiter burns no spin time; holder finishes in ~41 ms.
  EXPECT_EQ(wl.tasks()[1]->stats.spin_time, 0);
  EXPECT_LT(wl.makespan_end(), sim::milliseconds(50));
}

TEST(GuestSched, BlockedWaiterFreesCpuForThirdTask) {
  core::World w(base_config(1));
  const auto vm = w.add_vm(pinned_vm("vm", 1), false);
  auto& wl = w.attach(
      vm, std::make_unique<TestWorkload>(
              "t", [](guest::GuestKernel& k, TestWorkload& tw) {
                auto& m = tw.sync_ctx().make_mutex();
                tw.add_task(
                    k, "holder",
                    std::make_unique<ScriptedBehavior>(std::vector<guest::Action>{
                        guest::Action::lock(m),
                        guest::Action::compute(sim::milliseconds(30)),
                        guest::Action::unlock(m),
                    }),
                    0);
                tw.add_task(
                    k, "waiter",
                    std::make_unique<ScriptedBehavior>(std::vector<guest::Action>{
                        guest::Action::lock(m),
                        guest::Action::unlock(m),
                    }),
                    0);
                tw.add_task(k, "worker",
                            test::compute_behavior(sim::milliseconds(30)), 0);
              }));
  w.start();
  ASSERT_TRUE(w.run_until_finished(vm, sim::seconds(1)));
  // holder and worker timeshare (~60 ms total); waiter costs ~nothing.
  EXPECT_LT(wl.makespan_end(), sim::milliseconds(70));
}

TEST(GuestSched, GuestContextSwitchesAreCounted) {
  core::World w(base_config(1));
  const auto vm = w.add_vm(pinned_vm("vm", 1), false);
  w.attach(vm, std::make_unique<TestWorkload>(
                   "t", [](guest::GuestKernel& k, TestWorkload& tw) {
                     tw.add_task(k, "a", test::hog_behavior(), 0);
                     tw.add_task(k, "b", test::hog_behavior(), 0);
                   }));
  w.start();
  w.run_for(sim::seconds(1));
  // CFS alternates the two hogs every few ms.
  EXPECT_GT(w.kernel(vm).stats().guest_ctx_switches, 100u);
}

TEST(GuestSched, VruntimeFairnessWithThreeTasks) {
  core::World w(base_config(1));
  const auto vm = w.add_vm(pinned_vm("vm", 1), false);
  auto& wl = w.attach(
      vm, std::make_unique<TestWorkload>(
              "t", [](guest::GuestKernel& k, TestWorkload& tw) {
                for (int i = 0; i < 3; ++i) {
                  tw.add_task(k, "h" + std::to_string(i), test::hog_behavior(),
                              0);
                }
              }));
  w.start();
  w.run_for(sim::seconds(3));
  for (const guest::Task* t : wl.tasks()) {
    EXPECT_NEAR(sim::to_sec(t->stats.compute_done), 1.0, 0.08) << t->name();
  }
}

TEST(GuestSched, PipelineFlowsThroughStages) {
  core::World w(base_config(2));
  const auto vm = w.add_vm(pinned_vm("vm", 2), false);
  // 2-stage pipeline with explicit scripted producer/consumer.
  auto& wl = w.attach(
      vm, std::make_unique<TestWorkload>(
              "t", [](guest::GuestKernel& k, TestWorkload& tw) {
                auto& pipe = tw.sync_ctx().make_pipe(2);
                std::vector<guest::Action> prod;
                for (int i = 0; i < 10; ++i) {
                  prod.push_back(guest::Action::compute(sim::milliseconds(1)));
                  prod.push_back(guest::Action::pipe_push(pipe));
                }
                tw.add_task(k, "prod",
                            std::make_unique<ScriptedBehavior>(prod), 0);
                std::vector<guest::Action> cons;
                for (int i = 0; i < 10; ++i) {
                  cons.push_back(guest::Action::pipe_pop(pipe));
                  cons.push_back(guest::Action::compute(sim::milliseconds(1)));
                }
                tw.add_task(k, "cons",
                            std::make_unique<ScriptedBehavior>(cons), 1);
              }));
  w.start();
  ASSERT_TRUE(w.run_until_finished(vm, sim::seconds(1)));
  // Pipelined: ~11 ms, far below the 20 ms serial bound.
  EXPECT_LT(wl.makespan_end(), sim::milliseconds(16));
}

TEST(GuestSched, CondvarRoundTrip) {
  core::World w(base_config(1));
  const auto vm = w.add_vm(pinned_vm("vm", 1), false);
  auto& wl = w.attach(
      vm, std::make_unique<TestWorkload>(
              "t", [](guest::GuestKernel& k, TestWorkload& tw) {
                auto& m = tw.sync_ctx().make_mutex();
                auto& cv = tw.sync_ctx().make_condvar();
                tw.add_task(
                    k, "waiter",
                    std::make_unique<ScriptedBehavior>(std::vector<guest::Action>{
                        guest::Action::lock(m),
                        guest::Action::cond_wait(cv, m),
                        guest::Action::unlock(m),
                        guest::Action::compute(sim::milliseconds(1)),
                    }),
                    0);
                tw.add_task(
                    k, "signaler",
                    std::make_unique<ScriptedBehavior>(std::vector<guest::Action>{
                        guest::Action::compute(sim::milliseconds(5)),
                        guest::Action::lock(m),
                        guest::Action::cond_signal(cv),
                        guest::Action::unlock(m),
                    }),
                    0);
              }));
  w.start();
  ASSERT_TRUE(w.run_until_finished(vm, sim::seconds(1)));
  EXPECT_TRUE(wl.tasks()[0]->finished());
  EXPECT_TRUE(wl.tasks()[1]->finished());
}

TEST(GuestSched, YieldRotatesReadyTasks) {
  core::World w(base_config(1));
  const auto vm = w.add_vm(pinned_vm("vm", 1), false);
  auto& wl = w.attach(
      vm, std::make_unique<TestWorkload>(
              "t", [](guest::GuestKernel& k, TestWorkload& tw) {
                tw.add_task(
                    k, "yielder",
                    std::make_unique<ScriptedBehavior>(
                        std::vector<guest::Action>{
                            guest::Action::compute(sim::microseconds(100)),
                            guest::Action::yield(),
                        },
                        /*loop=*/true),
                    0);
                tw.add_task(k, "other",
                            test::compute_behavior(sim::milliseconds(10)), 0);
              }));
  w.start();
  w.run_for(sim::milliseconds(25));
  // The yielder kept giving way, so "other" finished early despite equal
  // shares under plain CFS.
  EXPECT_TRUE(wl.tasks()[1]->finished());
  EXPECT_LT(wl.tasks()[1]->stats.finished_at, sim::milliseconds(22));
}

TEST(GuestSched, StealFracConvergesUnderContention) {
  core::World w(base_config(1));
  const auto vm_a = w.add_vm(pinned_vm("a", 1), false);
  const auto vm_b = w.add_vm(pinned_vm("b", 1), false);
  w.attach(vm_a, std::make_unique<TestWorkload>(
                     "t", [](guest::GuestKernel& k, TestWorkload& tw) {
                       tw.add_task(k, "hog", test::hog_behavior(), 0);
                     }));
  w.attach(vm_b, std::make_unique<TestWorkload>(
                     "t", [](guest::GuestKernel& k, TestWorkload& tw) {
                       tw.add_task(k, "hog", test::hog_behavior(), 0);
                     }));
  w.start();
  w.run_for(sim::seconds(2));
  // Each VM sees ~50% steal on its vCPU.
  EXPECT_NEAR(w.kernel(vm_a).cpu(0).steal_frac(), 0.5, 0.15);
  EXPECT_NEAR(w.kernel(vm_b).cpu(0).steal_frac(), 0.5, 0.15);
}

}  // namespace
}  // namespace irs
