// Cluster layer tests: the placement/migration ledger (exact fold, digest,
// JSON round-trip), admission-policy placement determinism, the migration
// conservation identities from src/obs/cluster_stats.h, the cluster
// determinism battery (bit-identical RunResults across queue backends,
// trace batching, sweep thread counts, and a 2-shard NDJSON fold in either
// order), the fig_cluster acceptance fixture (IRS placement beats random
// under co-located hogs), the RunCapture per-host dump surface, and the
// HostNode VmId-validation errors the cluster API split made load-bearing.
#include "src/cluster/cluster.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "src/core/world.h"
#include "src/exp/runner.h"
#include "src/exp/shard.h"
#include "src/exp/stats.h"
#include "src/exp/sweep.h"
#include "src/obs/cluster_stats.h"
#include "src/obs/json.h"
#include "src/obs/json_reader.h"
#include "src/obs/sampler.h"

namespace {

using namespace irs;

// ---------------------------------------------------------------------------
// Ledger: fold / digest / JSON
// ---------------------------------------------------------------------------

/// Deterministic synthetic ledger for run `i`: every field nonzero and
/// i-dependent (the fold/JSON tests need distinguishable bits, not the
/// conservation identities — those are covered on real runs below).
obs::ClusterResult synth_cluster(std::uint64_t i) {
  obs::ClusterResult c;
  c.n_hosts = 2 + static_cast<std::uint32_t>(i % 2);
  c.policy = static_cast<std::uint32_t>(i % 3);
  c.vms = 3 + i;
  c.migratable = 2 + i;
  c.decisions = 10 * i + 1;
  c.migrations = i + 1;
  c.in_transit_end = i % 2;
  c.downtime_total = static_cast<sim::Duration>(20000001 * (i + 1));
  for (std::uint32_t h = 0; h < c.n_hosts; ++h) {
    obs::ClusterHostLedger hl;
    hl.placed = 1 + h + i;
    hl.migr_in = 7 * i + h;
    hl.migr_out = 5 * i + 2 * h;
    hl.active_end = 3 + h;
    hl.samples = 100 + i + h;
    hl.lhp = 11 * i + h;
    hl.lwp = 13 * i + h;
    hl.steal = static_cast<sim::Duration>(997 * (i + 1) * (h + 1));
    c.hosts.push_back(hl);
  }
  return c;
}

TEST(ClusterLedger, FoldIsExactAndOrderIndependent) {
  const std::vector<obs::ClusterResult> runs = {
      synth_cluster(0), synth_cluster(1), synth_cluster(2), synth_cluster(5)};
  obs::ClusterResult fwd;
  for (const auto& r : runs) obs::fold_cluster(fwd, r);
  obs::ClusterResult rev;
  for (auto it = runs.rbegin(); it != runs.rend(); ++it) {
    obs::fold_cluster(rev, *it);
  }
  EXPECT_EQ(fwd, rev);
  EXPECT_EQ(fwd.digest(), rev.digest());
  // Counters add exactly; n_hosts/policy take the max; hosts grow to the
  // widest run.
  EXPECT_EQ(fwd.n_hosts, 3u);
  EXPECT_EQ(fwd.policy, 2u);
  EXPECT_EQ(fwd.vms, 3 + 0 + 3 + 1 + 3 + 2 + 3 + 5);
  EXPECT_EQ(fwd.migrations, 1u + 2u + 3u + 6u);
  ASSERT_EQ(fwd.hosts.size(), 3u);
  EXPECT_EQ(fwd.hosts[0].placed,
            (1 + 0) + (1 + 1) + (1 + 2) + (1 + 5));
  // Host 2 exists only in the odd-i runs.
  EXPECT_EQ(fwd.hosts[2].placed, (1 + 2 + 1) + (1 + 2 + 5));
  // Folding an empty result is a no-op.
  const obs::ClusterResult before = fwd;
  obs::fold_cluster(fwd, obs::ClusterResult{});
  EXPECT_EQ(fwd, before);
}

TEST(ClusterLedger, DigestIsZeroOnlyWhenEmptyAndFieldSensitive) {
  EXPECT_TRUE(obs::ClusterResult{}.empty());
  EXPECT_EQ(obs::ClusterResult{}.digest(), 0u);
  const obs::ClusterResult base = synth_cluster(3);
  EXPECT_FALSE(base.empty());
  EXPECT_NE(base.digest(), 0u);
  // Any single-field perturbation moves the digest.
  auto perturbed = [&](auto&& mutate) {
    obs::ClusterResult c = base;
    mutate(c);
    return c.digest();
  };
  EXPECT_NE(perturbed([](auto& c) { c.policy ^= 1; }), base.digest());
  EXPECT_NE(perturbed([](auto& c) { c.migrations += 1; }), base.digest());
  EXPECT_NE(perturbed([](auto& c) { c.downtime_total += 1; }), base.digest());
  EXPECT_NE(perturbed([](auto& c) { c.hosts[1].steal += 1; }), base.digest());
  EXPECT_NE(perturbed([](auto& c) { c.hosts.pop_back(); }), base.digest());
}

TEST(ClusterLedger, JsonRoundTripsBitIdentical) {
  for (const std::uint64_t i : {0ULL, 1ULL, 4ULL}) {
    const obs::ClusterResult c = synth_cluster(i);
    obs::JsonWriter w(obs::JsonWriter::Doubles::kRoundTrip);
    obs::cluster_json(w, c);
    obs::JsonReader reader;
    obs::JsonValue v;
    ASSERT_TRUE(reader.parse(w.str(), &v)) << reader.error();
    obs::ClusterResult parsed;
    std::string err;
    ASSERT_TRUE(obs::cluster_from_value(v, &parsed, &err)) << err;
    EXPECT_EQ(parsed, c);
    EXPECT_EQ(parsed.digest(), c.digest());
    // Re-emitting the parsed ledger reproduces the exact bytes.
    obs::JsonWriter w2(obs::JsonWriter::Doubles::kRoundTrip);
    obs::cluster_json(w2, parsed);
    EXPECT_EQ(w2.str(), w.str());
  }
}

TEST(ClusterLedger, JsonRejectsMalformedWithNamedErrors) {
  obs::JsonReader reader;
  obs::JsonValue v;
  obs::ClusterResult out;
  std::string err;
  // Not an object.
  ASSERT_TRUE(reader.parse("[1,2]", &v));
  EXPECT_FALSE(obs::cluster_from_value(v, &out, &err));
  EXPECT_EQ(err.find("cluster"), 0u) << err;
  // Missing a required counter.
  ASSERT_TRUE(reader.parse(R"({"n_hosts":2,"policy":1})", &v));
  EXPECT_FALSE(obs::cluster_from_value(v, &out, &err));
  EXPECT_NE(err.find("cluster: missing or bad"), std::string::npos) << err;
  // A host row with the wrong arity is rejected, not zero-filled.
  ASSERT_TRUE(reader.parse(
      R"({"n_hosts":1,"policy":0,"vms":1,"migratable":0,"decisions":0,)"
      R"("migrations":0,"in_transit_end":0,"downtime_total_ns":0,)"
      R"("hosts":[[1,0,0,1,5,0,0]]})",
      &v));
  EXPECT_FALSE(obs::cluster_from_value(v, &out, &err));
  EXPECT_NE(err.find("8-element"), std::string::npos) << err;
}

// ---------------------------------------------------------------------------
// Admission placement: each policy is deterministic and has its shape
// ---------------------------------------------------------------------------

cluster::ClusterConfig tiny_cluster(int n_hosts, cluster::Policy policy,
                                    std::uint64_t seed = 1) {
  cluster::ClusterConfig cc;
  cc.n_hosts = n_hosts;
  cc.policy = policy;
  cc.seed = seed;
  return cc;
}

std::vector<int> admit_hogs(cluster::Cluster& cl, int n, int n_vcpus = 2) {
  std::vector<int> hosts;
  for (int i = 0; i < n; ++i) {
    const int mig =
        cl.add_migratable_hog("hog" + std::to_string(i), n_vcpus, n_vcpus);
    hosts.push_back(cl.assigned_host(mig));
  }
  return hosts;
}

TEST(ClusterPlacement, FirstFitFillsInOrderThenOverflowsLeastLoaded) {
  cluster::Cluster cl(tiny_cluster(3, cluster::Policy::kFirstFit));
  // 4 pCPUs per host, 2-vCPU VMs: two per host in index order; the 7th
  // fits nowhere and overflows to the least-loaded (ties: host 0).
  EXPECT_EQ(admit_hogs(cl, 7), (std::vector<int>{0, 0, 1, 1, 2, 2, 0}));
}

TEST(ClusterPlacement, IrsSpreadsLeastVcpusLowestIndexTies) {
  cluster::Cluster cl(tiny_cluster(3, cluster::Policy::kIrs));
  EXPECT_EQ(admit_hogs(cl, 6), (std::vector<int>{0, 1, 2, 0, 1, 2}));
}

TEST(ClusterPlacement, IrsSpreadCountsFixedVmsToo) {
  cluster::ClusterConfig cc = tiny_cluster(2, cluster::Policy::kIrs);
  cluster::Cluster cl(cc);
  hv::VmConfig fg;
  fg.name = "fg";
  fg.n_vcpus = 4;
  cl.add_vm(/*host=*/0, fg, /*irs_capable=*/true);
  // Host 0 already carries 4 fixed vCPUs: both 2-vCPU hogs spread to host
  // 1; the third ties 4-vs-4 and takes the lowest index.
  EXPECT_EQ(admit_hogs(cl, 3), (std::vector<int>{1, 1, 0}));
}

TEST(ClusterPlacement, RandomIsSeedReproducible) {
  cluster::Cluster a(tiny_cluster(4, cluster::Policy::kRandom, 7));
  cluster::Cluster b(tiny_cluster(4, cluster::Policy::kRandom, 7));
  EXPECT_EQ(admit_hogs(a, 8), admit_hogs(b, 8));
}

// ---------------------------------------------------------------------------
// Real cluster runs through the experiment runner
// ---------------------------------------------------------------------------

/// The standard two-host scenario: a protected "ab" server on host 0 and
/// `n_hogs` migratable two-vCPU hog VMs admitted by `policy`.
exp::ScenarioConfig cluster_cfg(const std::string& policy, int n_hogs,
                                sim::Duration duration) {
  exp::ScenarioConfig cfg;
  cfg.fg = "ab";
  cfg.strategy = core::Strategy::kBaseline;
  cfg.n_inter = 2;
  cfg.n_bg_vms = n_hogs;
  cfg.seed = 1;
  cfg.server_duration = duration;
  cfg.cluster.n_hosts = 2;
  cfg.cluster.policy = policy;
  return cfg;
}

TEST(ClusterMigration, ConservationIdentitiesHoldAcrossMigrations) {
  // IRS admission ties the third hog onto the protected host, so the
  // decision loop must evict it: a run with at least one live migration.
  const exp::RunResult r =
      exp::run_scenario(cluster_cfg("irs", 3, sim::seconds(1)));
  ASSERT_TRUE(r.finished);
  const obs::ClusterResult& c = r.cluster;
  ASSERT_EQ(c.n_hosts, 2u);
  EXPECT_EQ(c.policy,
            static_cast<std::uint32_t>(cluster::Policy::kIrs));
  EXPECT_EQ(c.vms, 4u);         // 1 fixed foreground + 3 migratable hogs
  EXPECT_EQ(c.migratable, 3u);
  EXPECT_GE(c.migrations, 1u);  // the co-located hog was evicted
  EXPECT_GT(c.decisions, 0u);
  EXPECT_LE(c.in_transit_end, c.migrations);
  // The cost model books exactly one downtime per migration.
  EXPECT_EQ(c.downtime_total,
            static_cast<sim::Duration>(c.migrations) *
                exp::ScenarioConfig{}.cluster.migration_downtime);
  // The conservation identities from src/obs/cluster_stats.h.
  ASSERT_EQ(c.hosts.size(), 2u);
  std::uint64_t placed = 0;
  std::uint64_t in = 0;
  std::uint64_t out = 0;
  for (const obs::ClusterHostLedger& h : c.hosts) {
    EXPECT_EQ(h.placed + h.migr_in - h.migr_out, h.active_end);
    EXPECT_GT(h.samples, 0u);  // every host's collector ran
    placed += h.placed;
    in += h.migr_in;
    out += h.migr_out;
  }
  EXPECT_EQ(placed, c.vms);
  EXPECT_EQ(in, c.migrations);
  EXPECT_EQ(out, c.migrations);
  // The ledger digest in the result is live and recomputable.
  EXPECT_NE(r.cluster_digest, 0u);
  EXPECT_EQ(r.cluster_digest, c.digest());
  // The per-host scheduler's own migration counter (foreground kernel) is
  // unrelated to cluster migrations — Baseline keeps it at zero.
  EXPECT_EQ(r.irs_migrations, 0u);
}

TEST(ClusterAcceptance, IrsPlacementBeatsRandomUnderTwoHogs) {
  // The fig_cluster headline on its fixed-seed fixture: the random policy
  // co-locates a hog with the protected server (seed 1 places one of the
  // two hogs on host 0) while the IRS spread keeps host 0 clean, so the
  // foreground p999 gap is the whole interference story.
  const exp::RunResult rnd =
      exp::run_scenario(cluster_cfg("random", 2, sim::seconds(1)));
  const exp::RunResult irs =
      exp::run_scenario(cluster_cfg("irs", 2, sim::seconds(1)));
  ASSERT_TRUE(rnd.finished);
  ASSERT_TRUE(irs.finished);
  ASSERT_EQ(rnd.cluster.hosts.size(), 2u);
  EXPECT_GE(rnd.cluster.hosts[0].placed, 2u);  // fg + at least one hog
  EXPECT_EQ(irs.cluster.hosts[0].placed, 1u);  // fg alone
  EXPECT_EQ(irs.cluster.hosts[1].placed, 2u);  // both hogs spread away
  EXPECT_GT(rnd.lat_p999, 0);
  EXPECT_GT(irs.lat_p999, 0);
  // Co-location roughly doubles the tail on this fixture; 1.2x is a wide
  // margin over run-to-run determinism (there is none — fixed seed).
  EXPECT_GT(static_cast<double>(rnd.lat_p999),
            1.2 * static_cast<double>(irs.lat_p999));
}

// ---------------------------------------------------------------------------
// Determinism battery: backends x trace batch x sweep threads x fold order
// ---------------------------------------------------------------------------

/// Two-cell grid (random + irs placement) with sampling and tracing armed
/// so every digest in the result is live.
std::vector<exp::ScenarioConfig> battery_cells(sim::QueueKind queue,
                                               int trace_batch) {
  std::vector<exp::ScenarioConfig> cfgs;
  for (const char* pol : {"random", "irs"}) {
    exp::ScenarioConfig cfg = cluster_cfg(pol, 3, sim::milliseconds(300));
    cfg.sample_period = obs::Sampler::kDefaultPeriod;
    cfg.trace_capacity = 1 << 18;  // roomy: drops would couple to batching
    cfg.trace_batch = trace_batch;
    cfg.queue = queue;
    cfgs.push_back(cfg);
  }
  return cfgs;
}

TEST(ClusterDeterminism, BitIdenticalAcrossBackendsBatchAndThreads) {
  const auto ref =
      exp::run_sweep(battery_cells(sim::QueueKind::kBinaryHeap, 1),
                     /*n_threads=*/1);
  ASSERT_EQ(ref.size(), 2u);
  for (const exp::RunResult& r : ref) {
    ASSERT_TRUE(r.finished);
    EXPECT_NE(r.cluster_digest, 0u);
    EXPECT_NE(r.sampler_digest, 0u);
    EXPECT_EQ(r.trace_dropped, 0u);  // the ring really was roomy
  }
  for (const sim::QueueKind queue :
       {sim::QueueKind::kBinaryHeap, sim::QueueKind::kQuadHeap,
        sim::QueueKind::kHybridWheel}) {
    for (const int batch : {1, 64}) {
      for (const int threads : {1, 4}) {
        SCOPED_TRACE(testing::Message()
                     << "queue=" << static_cast<int>(queue)
                     << " batch=" << batch << " threads=" << threads);
        const auto got = exp::run_sweep(battery_cells(queue, batch), threads);
        ASSERT_EQ(got.size(), ref.size());
        for (std::size_t i = 0; i < ref.size(); ++i) {
          SCOPED_TRACE(i);
          EXPECT_TRUE(exp::results_identical(ref[i], got[i]));
        }
      }
    }
  }
}

TEST(ClusterDeterminism, TwoShardNdjsonFoldsBitIdenticallyInEitherOrder) {
  const auto cfgs =
      battery_cells(sim::default_queue_kind(), /*trace_batch=*/64);
  const auto runs = exp::run_sweep(cfgs, /*n_threads=*/2);
  ASSERT_EQ(runs.size(), 2u);

  // Serialize as a 2-shard NDJSON sweep (shard s owns run s) and merge the
  // files in both orders: the merged results, the folded cluster ledger,
  // and the XOR digest sentinel must not depend on arrival order.
  auto stream = [&](int shard) {
    exp::ShardHeader h;
    h.shard = shard;
    h.n_shards = 2;
    h.total_runs = runs.size();
    h.fig = "fig_cluster";
    h.seeds = 1;
    return exp::shard_header_json(h) + "\n" +
           exp::shard_line_json(static_cast<std::size_t>(shard),
                                runs[static_cast<std::size_t>(shard)]) +
           "\n";
  };
  const std::string s0 = stream(0);
  const std::string s1 = stream(1);
  const exp::MergeReport fwd =
      exp::merge_shard_streams({{"s0", s0}, {"s1", s1}});
  const exp::MergeReport rev =
      exp::merge_shard_streams({{"s1", s1}, {"s0", s0}});
  ASSERT_TRUE(fwd.ok()) << exp::merge_summary_json(fwd);
  ASSERT_TRUE(rev.ok()) << exp::merge_summary_json(rev);
  ASSERT_EQ(fwd.results.size(), runs.size());
  ASSERT_EQ(rev.results.size(), runs.size());
  for (std::size_t i = 0; i < runs.size(); ++i) {
    SCOPED_TRACE(i);
    EXPECT_TRUE(exp::results_identical(runs[i], fwd.results[i]));
    EXPECT_TRUE(exp::results_identical(runs[i], rev.results[i]));
  }
  // The sweep-stats cluster fold is integer-exact, so folding the two runs
  // in either order produces the same totals and digest XOR.
  exp::SweepStats a;
  a.add(runs[0]);
  a.add(runs[1]);
  exp::SweepStats b;
  b.add(runs[1]);
  b.add(runs[0]);
  EXPECT_EQ(a.cluster(), b.cluster());
  EXPECT_EQ(a.cluster_digest_xor(), b.cluster_digest_xor());
  EXPECT_EQ(a.cluster_digest_xor(),
            runs[0].cluster_digest ^ runs[1].cluster_digest);
  obs::ClusterResult direct;
  obs::fold_cluster(direct, runs[0].cluster);
  obs::fold_cluster(direct, runs[1].cluster);
  EXPECT_EQ(a.cluster(), direct);
}

// ---------------------------------------------------------------------------
// RunCapture: per-host dumps
// ---------------------------------------------------------------------------

TEST(ClusterCapture, HostDumpsCoverEveryHostAndHostZeroEqualsDump) {
  exp::ScenarioConfig cfg = cluster_cfg("irs", 1, sim::milliseconds(200));
  exp::TraceDump dump;
  std::vector<exp::TraceDump> host_dumps;
  exp::RunCapture cap;
  cap.dump = &dump;
  cap.host_dumps = &host_dumps;
  const exp::RunResult r = exp::run_scenario(cfg, cap);
  ASSERT_TRUE(r.finished);
  ASSERT_EQ(host_dumps.size(), 2u);
  EXPECT_FALSE(dump.records.empty());
  EXPECT_FALSE(dump.meta.vcpus.empty());
  // Host 0's entry is what the single-dump surface receives.
  EXPECT_EQ(host_dumps[0].records.size(), dump.records.size());
  EXPECT_EQ(host_dumps[0].meta.title, dump.meta.title);
  EXPECT_EQ(host_dumps[0].slo.digest(), r.slo.digest());
  // Per-host titles name their host.
  EXPECT_NE(host_dumps[0].meta.title.find("host0"), std::string::npos)
      << host_dumps[0].meta.title;
  EXPECT_NE(host_dumps[1].meta.title.find("host1"), std::string::npos)
      << host_dumps[1].meta.title;
}

TEST(ClusterCapture, UnknownPolicyFailsWithNamedError) {
  exp::ScenarioConfig cfg = cluster_cfg("bogus", 1, sim::milliseconds(100));
  try {
    exp::run_scenario(cfg);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("unknown cluster policy 'bogus'"),
              std::string::npos)
        << e.what();
  }
}

// ---------------------------------------------------------------------------
// HostNode VmId validation (the bug the cluster split made load-bearing)
// ---------------------------------------------------------------------------

TEST(HostNodeValidation, ForeignVmIdFailsNamingIdAndHost) {
  core::World w(core::WorldConfig{});
  hv::VmConfig vc;
  vc.name = "fg";
  vc.n_vcpus = 2;
  const hv::VmId vm = w.add_vm(vc, /*irs_capable=*/false);
  try {
    static_cast<void>(w.kernel(vm + 7));
    FAIL() << "expected std::out_of_range";
  } catch (const std::out_of_range& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("kernel: VmId " + std::to_string(vm + 7)),
              std::string::npos)
        << msg;
    EXPECT_NE(msg.find("host 'host'"), std::string::npos) << msg;
    EXPECT_NE(msg.find("host-local"), std::string::npos) << msg;
  }
  EXPECT_THROW(static_cast<void>(w.workload(-1)), std::out_of_range);
  EXPECT_THROW(static_cast<void>(w.vm_metrics(99)), std::out_of_range);
}

TEST(HostNodeValidation, ClusterAccessorsNameTheirHost) {
  cluster::Cluster cl(tiny_cluster(2, cluster::Policy::kIrs));
  try {
    static_cast<void>(cl.kernel(cluster::CvmId{1, 3}));
    FAIL() << "expected std::out_of_range";
  } catch (const std::out_of_range& e) {
    EXPECT_NE(std::string(e.what()).find("host 'host1'"), std::string::npos)
        << e.what();
  }
  // And a bad host index fails at the cluster boundary, naming the range.
  try {
    static_cast<void>(cl.node(5));
    FAIL() << "expected std::out_of_range";
  } catch (const std::out_of_range& e) {
    EXPECT_NE(std::string(e.what()).find("host 5 out of range"),
              std::string::npos)
        << e.what();
  }
}

}  // namespace
