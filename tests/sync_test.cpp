// Unit tests for the guest-level synchronisation primitives, using a fake
// SchedApi so no scheduler machinery is involved.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "src/guest/sched_api.h"
#include "src/sync/barrier.h"
#include "src/sync/condvar.h"
#include "src/sync/mutex.h"
#include "src/sync/pipe.h"
#include "src/sync/spinlock.h"
#include "src/sync/sync_context.h"
#include "src/sync/work_pool.h"

namespace irs::sync {
namespace {

/// Fake scheduler: tracks wakes/grants; "executing" is an explicit set.
class FakeSched final : public guest::SchedApi {
 public:
  [[nodiscard]] sim::Time now() const override { return now_; }
  void wake_task(guest::Task& t) override { woken.push_back(&t); }
  [[nodiscard]] bool task_executing(const guest::Task& t) const override {
    for (const auto* e : executing) {
      if (e == &t) return true;
    }
    return false;
  }
  void spin_granted(guest::Task& t) override { granted.push_back(&t); }

  sim::Time now_ = 0;
  std::vector<guest::Task*> woken;
  std::vector<guest::Task*> granted;
  std::vector<const guest::Task*> executing;
};

class SyncTest : public ::testing::Test {
 protected:
  guest::Task& task(int i) {
    while (tasks_.size() <= static_cast<std::size_t>(i)) {
      const auto id = static_cast<guest::TaskId>(tasks_.size());
      tasks_.push_back(std::make_unique<guest::Task>(
          id, "t" + std::to_string(id), nullptr, sim::Rng(7)));
    }
    return *tasks_[static_cast<std::size_t>(i)];
  }

  FakeSched api_;
  std::vector<std::unique_ptr<guest::Task>> tasks_;
};

// ---------------------------------------------------------------------------
// Mutex
// ---------------------------------------------------------------------------

TEST_F(SyncTest, MutexUncontendedAcquire) {
  Mutex m(api_);
  EXPECT_EQ(m.lock(task(0)), AcquireResult::kAcquired);
  EXPECT_EQ(m.owner(), &task(0));
  EXPECT_EQ(task(0).locks_held, 1);
  m.unlock(task(0));
  EXPECT_EQ(m.owner(), nullptr);
  EXPECT_EQ(task(0).locks_held, 0);
}

TEST_F(SyncTest, MutexContendedBlocksAndWakesFifoWithBarging) {
  Mutex m(api_);
  ASSERT_EQ(m.lock(task(0)), AcquireResult::kAcquired);
  EXPECT_EQ(m.lock(task(1)), AcquireResult::kBlocked);
  EXPECT_EQ(m.lock(task(2)), AcquireResult::kBlocked);
  EXPECT_EQ(m.n_waiters(), 2u);
  m.unlock(task(0));
  // Futex semantics: the lock is free; the head waiter is woken and must
  // retry via Task::reacquire.
  EXPECT_EQ(m.owner(), nullptr);
  ASSERT_EQ(api_.woken.size(), 1u);
  EXPECT_EQ(api_.woken[0], &task(1));
  EXPECT_EQ(task(1).reacquire, &m);
  // A third task can barge in before the woken waiter runs.
  EXPECT_EQ(m.lock(task(3)), AcquireResult::kAcquired);
  // The woken waiter's retry now blocks again.
  task(1).reacquire = nullptr;
  EXPECT_EQ(m.lock(task(1)), AcquireResult::kBlocked);
  m.unlock(task(3));
  EXPECT_EQ(api_.woken.size(), 2u);  // task(2) (FIFO head) woken next
  EXPECT_EQ(api_.woken[1], &task(2));
}

TEST_F(SyncTest, MutexTracksContentionStats) {
  Mutex m(api_);
  m.lock(task(0));
  api_.now_ = sim::milliseconds(1);
  m.lock(task(1));
  api_.now_ = sim::milliseconds(5);
  m.unlock(task(0));
  EXPECT_EQ(m.contentions(), 1u);
  EXPECT_EQ(m.total_wait(), sim::milliseconds(4));
}

TEST_F(SyncTest, MutexCancelWait) {
  Mutex m(api_);
  m.lock(task(0));
  m.lock(task(1));
  EXPECT_TRUE(m.cancel_wait(task(1)));
  EXPECT_FALSE(m.cancel_wait(task(1)));
  m.unlock(task(0));
  EXPECT_EQ(m.owner(), nullptr);  // nobody left to hand off to
}

// ---------------------------------------------------------------------------
// Ticket spinlock
// ---------------------------------------------------------------------------

TEST_F(SyncTest, TicketSpinUncontended) {
  SpinLock s(api_, SpinKind::kTicket);
  EXPECT_EQ(s.lock(task(0)), SpinResult::kAcquired);
  s.unlock(task(0));
  EXPECT_EQ(s.owner(), nullptr);
}

TEST_F(SyncTest, TicketGrantsHeadWaiterOnlyIfExecuting) {
  SpinLock s(api_, SpinKind::kTicket);
  s.lock(task(0));
  EXPECT_EQ(s.lock(task(1)), SpinResult::kSpin);
  EXPECT_EQ(s.lock(task(2)), SpinResult::kSpin);
  // Head waiter (task1) is NOT executing: release leaves the lock
  // unclaimed even though task2 spins — the LWP stall.
  api_.executing = {&task(2)};
  s.unlock(task(0));
  EXPECT_EQ(s.owner(), nullptr);
  EXPECT_TRUE(api_.granted.empty());
  // Task1's vCPU comes back: poll claims the lock in FIFO order.
  s.poll(task(1));
  EXPECT_EQ(s.owner(), &task(1));
  ASSERT_EQ(api_.granted.size(), 1u);
  EXPECT_EQ(api_.granted[0], &task(1));
}

TEST_F(SyncTest, TicketGrantsExecutingHeadImmediately) {
  SpinLock s(api_, SpinKind::kTicket);
  s.lock(task(0));
  s.lock(task(1));
  api_.executing = {&task(1)};
  s.unlock(task(0));
  EXPECT_EQ(s.owner(), &task(1));
}

TEST_F(SyncTest, TicketPollOutOfTurnDoesNothing) {
  SpinLock s(api_, SpinKind::kTicket);
  s.lock(task(0));
  s.lock(task(1));
  s.lock(task(2));
  s.unlock(task(0));
  s.poll(task(2));  // not next in line
  EXPECT_EQ(s.owner(), nullptr);
  s.poll(task(1));
  EXPECT_EQ(s.owner(), &task(1));
}

TEST_F(SyncTest, OpportunisticGrantsAnyExecutingWaiter) {
  SpinLock s(api_, SpinKind::kOpportunistic);
  s.lock(task(0));
  s.lock(task(1));
  s.lock(task(2));
  api_.executing = {&task(2)};  // head (task1) preempted
  s.unlock(task(0));
  EXPECT_EQ(s.owner(), &task(2));  // barging allowed — milder LWP
}

TEST_F(SyncTest, SpinLhpClassification) {
  SpinLock s(api_, SpinKind::kTicket);
  s.lock(task(0));
  EXPECT_EQ(task(0).locks_held, 1);  // holder — LHP candidate
  s.unlock(task(0));
  EXPECT_EQ(task(0).locks_held, 0);
}

// ---------------------------------------------------------------------------
// Barrier
// ---------------------------------------------------------------------------

TEST_F(SyncTest, BlockingBarrierReleasesAllOnLastArrival) {
  Barrier b(api_, 3, BarrierKind::kBlocking);
  EXPECT_EQ(b.arrive(task(0)), BarrierResult::kBlocked);
  EXPECT_EQ(b.arrive(task(1)), BarrierResult::kBlocked);
  EXPECT_EQ(b.arrive(task(2)), BarrierResult::kReleased);
  EXPECT_EQ(api_.woken.size(), 2u);
  EXPECT_EQ(b.generation(), 1u);
  EXPECT_EQ(b.arrived(), 0);
}

TEST_F(SyncTest, BlockingBarrierReusableAcrossGenerations) {
  Barrier b(api_, 2, BarrierKind::kBlocking);
  for (int gen = 0; gen < 5; ++gen) {
    EXPECT_EQ(b.arrive(task(0)), BarrierResult::kBlocked);
    EXPECT_EQ(b.arrive(task(1)), BarrierResult::kReleased);
  }
  EXPECT_EQ(b.generation(), 5u);
}

TEST_F(SyncTest, SpinningBarrierGrantsExecutingSpinners) {
  Barrier b(api_, 3, BarrierKind::kSpinning);
  EXPECT_EQ(b.arrive(task(0)), BarrierResult::kSpin);
  EXPECT_EQ(b.arrive(task(1)), BarrierResult::kSpin);
  api_.executing = {&task(0)};  // task1's vCPU preempted
  EXPECT_EQ(b.arrive(task(2)), BarrierResult::kReleased);
  ASSERT_EQ(api_.granted.size(), 1u);
  EXPECT_EQ(api_.granted[0], &task(0));
  // task1 resumes later and polls through.
  b.poll(task(1));
  EXPECT_EQ(api_.granted.size(), 2u);
  EXPECT_EQ(api_.granted[1], &task(1));
}

TEST_F(SyncTest, SpinningBarrierPollBeforeOpenDoesNothing) {
  Barrier b(api_, 2, BarrierKind::kSpinning);
  b.arrive(task(0));
  b.poll(task(0));
  EXPECT_TRUE(api_.granted.empty());
}

TEST_F(SyncTest, SpinningBarrierDoubleGrantIsSafe) {
  Barrier b(api_, 2, BarrierKind::kSpinning);
  b.arrive(task(0));
  api_.executing = {&task(0)};
  b.arrive(task(1));
  ASSERT_EQ(api_.granted.size(), 1u);
  b.poll(task(0));  // already granted: silently ignored
  EXPECT_EQ(api_.granted.size(), 1u);
}

// ---------------------------------------------------------------------------
// Pipe
// ---------------------------------------------------------------------------

TEST_F(SyncTest, PipePushPopBasic) {
  Pipe p(api_, 2);
  EXPECT_EQ(p.push(task(0)), AcquireResult::kAcquired);
  EXPECT_EQ(p.size(), 1);
  EXPECT_EQ(p.pop(task(1)), AcquireResult::kAcquired);
  EXPECT_EQ(task(1).wake_value, 1);
  EXPECT_EQ(p.size(), 0);
}

TEST_F(SyncTest, PipeBlocksConsumerWhenEmpty) {
  Pipe p(api_, 2);
  EXPECT_EQ(p.pop(task(0)), AcquireResult::kBlocked);
  EXPECT_EQ(p.blocked_consumers(), 1u);
  p.push(task(1));
  // Item handed straight to the blocked consumer.
  ASSERT_EQ(api_.woken.size(), 1u);
  EXPECT_EQ(api_.woken[0], &task(0));
  EXPECT_EQ(task(0).wake_value, 1);
  EXPECT_EQ(p.size(), 0);
}

TEST_F(SyncTest, PipeBlocksProducerWhenFull) {
  Pipe p(api_, 1);
  p.push(task(0));
  EXPECT_EQ(p.push(task(1)), AcquireResult::kBlocked);
  EXPECT_EQ(p.blocked_producers(), 1u);
  p.pop(task(2));
  // The blocked producer's item takes the freed slot.
  EXPECT_EQ(p.size(), 1);
  ASSERT_EQ(api_.woken.size(), 1u);
  EXPECT_EQ(api_.woken[0], &task(1));
}

TEST_F(SyncTest, PipeCloseWakesConsumersWithNoItem) {
  Pipe p(api_, 2);
  p.pop(task(0));
  p.close();
  ASSERT_EQ(api_.woken.size(), 1u);
  EXPECT_EQ(task(0).wake_value, 0);
  // Future pops on closed+empty return immediately with no item.
  EXPECT_EQ(p.pop(task(1)), AcquireResult::kAcquired);
  EXPECT_EQ(task(1).wake_value, 0);
}

TEST_F(SyncTest, PipeDrainsRemainingItemsAfterClose) {
  Pipe p(api_, 4);
  p.push(task(0));
  p.push(task(0));
  p.close();
  EXPECT_EQ(p.pop(task(1)), AcquireResult::kAcquired);
  EXPECT_EQ(task(1).wake_value, 1);
  EXPECT_EQ(p.pop(task(1)), AcquireResult::kAcquired);
  EXPECT_EQ(task(1).wake_value, 1);
  EXPECT_EQ(p.pop(task(1)), AcquireResult::kAcquired);
  EXPECT_EQ(task(1).wake_value, 0);
}

// ---------------------------------------------------------------------------
// CondVar
// ---------------------------------------------------------------------------

TEST_F(SyncTest, CondVarWaitReleasesMutexAndQueues) {
  Mutex m(api_);
  CondVar cv(api_);
  m.lock(task(0));
  cv.wait(task(0), m);
  EXPECT_EQ(m.owner(), nullptr);
  EXPECT_EQ(task(0).reacquire, &m);
  EXPECT_EQ(cv.n_waiters(), 1u);
}

TEST_F(SyncTest, CondVarSignalWakesOne) {
  Mutex m(api_);
  CondVar cv(api_);
  m.lock(task(0));
  cv.wait(task(0), m);
  m.lock(task(1));
  cv.wait(task(1), m);
  EXPECT_TRUE(cv.signal());
  ASSERT_EQ(api_.woken.size(), 1u);
  EXPECT_EQ(api_.woken[0], &task(0));
  EXPECT_EQ(cv.n_waiters(), 1u);
  EXPECT_FALSE(cv.signal() && cv.signal());  // only one waiter left
}

TEST_F(SyncTest, CondVarBroadcastWakesAll) {
  Mutex m(api_);
  CondVar cv(api_);
  for (int i = 0; i < 3; ++i) {
    m.lock(task(i));
    cv.wait(task(i), m);
  }
  EXPECT_EQ(cv.broadcast(), 3);
  EXPECT_EQ(api_.woken.size(), 3u);
  EXPECT_EQ(cv.n_waiters(), 0u);
}

TEST_F(SyncTest, CondVarSignalEmptyReturnsFalse) {
  CondVar cv(api_);
  EXPECT_FALSE(cv.signal());
  EXPECT_EQ(cv.broadcast(), 0);
}

// ---------------------------------------------------------------------------
// WorkPool
// ---------------------------------------------------------------------------

TEST_F(SyncTest, WorkPoolFifoAndExhaustion) {
  WorkPool pool;
  pool.add(sim::milliseconds(1));
  pool.add_n(2, sim::milliseconds(2));
  EXPECT_EQ(pool.remaining(), 3u);
  EXPECT_EQ(pool.take().value(), sim::milliseconds(1));
  EXPECT_EQ(pool.take().value(), sim::milliseconds(2));
  EXPECT_EQ(pool.take().value(), sim::milliseconds(2));
  EXPECT_FALSE(pool.take().has_value());
  EXPECT_EQ(pool.taken(), 3u);
}

// ---------------------------------------------------------------------------
// SyncContext
// ---------------------------------------------------------------------------

TEST_F(SyncTest, SyncContextOwnsPrimitives) {
  SyncContext ctx(api_);
  Mutex& m1 = ctx.make_mutex("a");
  Mutex& m2 = ctx.make_mutex("b");
  EXPECT_NE(&m1, &m2);
  Barrier& b = ctx.make_barrier(4, BarrierKind::kSpinning);
  EXPECT_EQ(b.parties(), 4);
  SpinLock& s = ctx.make_spinlock(SpinKind::kOpportunistic);
  EXPECT_EQ(s.kind(), SpinKind::kOpportunistic);
  Pipe& p = ctx.make_pipe(8);
  EXPECT_EQ(p.capacity(), 8);
  ctx.make_condvar();
  ctx.make_pool();

  m1.lock(task(0));
  api_.now_ = 10;
  m1.lock(task(1));
  api_.now_ = 30;
  m1.unlock(task(0));
  EXPECT_EQ(ctx.total_mutex_wait(), 20);
}

}  // namespace
}  // namespace irs::sync
