// Streaming sweep statistics: StatAccumulator's moments and percentile
// sketch, SweepStats folding, JSON rendering, and the line-by-line NDJSON
// fold — which must agree exactly with folding the same results directly
// (the property that lets irs_sweep_merge --stats-only and bench_report's
// in-process consumer report identical aggregates).
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>
#include <string>
#include <vector>

#include "src/exp/report.h"
#include "src/exp/shard.h"
#include "src/exp/stats.h"
#include "src/sim/rng.h"

namespace {

using namespace irs;

TEST(StatAccumulator, EmptyIsAllZeros) {
  exp::StatAccumulator a;
  EXPECT_EQ(a.count(), 0u);
  EXPECT_EQ(a.mean(), 0.0);
  EXPECT_EQ(a.stddev(), 0.0);
  EXPECT_EQ(a.min(), 0.0);
  EXPECT_EQ(a.max(), 0.0);
  EXPECT_EQ(a.percentile(50), 0.0);
}

TEST(StatAccumulator, MomentsAndExtremaAreExact) {
  exp::StatAccumulator a;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) a.add(v);
  EXPECT_EQ(a.count(), 8u);
  EXPECT_DOUBLE_EQ(a.mean(), 5.0);
  EXPECT_DOUBLE_EQ(a.stddev(), 2.0);  // population stddev of the classic set
  EXPECT_EQ(a.min(), 2.0);
  EXPECT_EQ(a.max(), 9.0);
}

TEST(StatAccumulator, PercentilesWithinSketchError) {
  exp::StatAccumulator a;
  // 1..1000: the exact p-th percentile is ~10p. The log-linear sketch
  // guarantees ~3 % relative error (half a mantissa segment).
  for (int i = 1; i <= 1000; ++i) a.add(static_cast<double>(i));
  for (double p : {10.0, 50.0, 90.0, 99.0}) {
    const double exact = 10.0 * p;
    EXPECT_NEAR(a.percentile(p), exact, 0.03 * exact) << "p" << p;
  }
  // Clamped ends are exact.
  EXPECT_EQ(a.percentile(0), 1.0);
  EXPECT_EQ(a.percentile(100), 1000.0);
}

TEST(StatAccumulator, HandlesNegativeAndZeroValues) {
  exp::StatAccumulator a;
  for (double v : {-100.0, -10.0, 0.0, 10.0, 100.0}) a.add(v);
  EXPECT_EQ(a.min(), -100.0);
  EXPECT_EQ(a.max(), 100.0);
  EXPECT_NEAR(a.mean(), 0.0, 1e-12);  // Welford rounds, not exact
  // Median of the five values is 0; the sketch stores zero exactly.
  EXPECT_EQ(a.percentile(50), 0.0);
  // Tails clamp to the exact extrema, not bucket midpoints.
  EXPECT_GE(a.percentile(1), -100.0);
  EXPECT_LE(a.percentile(99), 100.0);
}

TEST(StatAccumulator, ConstantStreamHasZeroSpread) {
  exp::StatAccumulator a;
  for (int i = 0; i < 1000; ++i) a.add(42.5);
  EXPECT_DOUBLE_EQ(a.mean(), 42.5);
  EXPECT_DOUBLE_EQ(a.stddev(), 0.0);
  EXPECT_EQ(a.percentile(50), 42.5);
  EXPECT_EQ(a.percentile(99), 42.5);
}

TEST(StatAccumulator, SingleSampleIsItsOwnEverything) {
  exp::StatAccumulator a;
  a.add(3.25);
  EXPECT_EQ(a.count(), 1u);
  EXPECT_DOUBLE_EQ(a.mean(), 3.25);
  EXPECT_DOUBLE_EQ(a.stddev(), 0.0);
  EXPECT_EQ(a.min(), 3.25);
  EXPECT_EQ(a.max(), 3.25);
  for (double p : {0.0, 50.0, 99.9, 100.0}) {
    EXPECT_EQ(a.percentile(p), 3.25) << "p" << p;
  }
}

TEST(StatAccumulator, ParetoTailStaysWithinSketchError) {
  // Heavy-tailed input is where a log-linear sketch could drift: the tail
  // spans many octaves with few samples each. Pareto(alpha=1.5) via
  // inverse transform; compare against exact order statistics.
  sim::Rng rng(99);
  exp::StatAccumulator a;
  std::vector<double> vals;
  for (int i = 0; i < 200000; ++i) {
    const double u = (static_cast<double>(rng.next_below(1u << 30)) + 0.5) /
                     static_cast<double>(1u << 30);
    const double v = std::pow(1.0 - u, -1.0 / 1.5);  // xm = 1
    vals.push_back(v);
    a.add(v);
  }
  std::sort(vals.begin(), vals.end());
  for (double p : {50.0, 90.0, 99.0, 99.9}) {
    const double rank = p / 100.0 * static_cast<double>(vals.size() - 1);
    const double exact = vals[static_cast<std::size_t>(rank)];
    EXPECT_NEAR(a.percentile(p), exact, 0.04 * exact) << "p" << p;
  }
  EXPECT_EQ(a.max(), vals.back());
}

TEST(StatAccumulator, MergeMatchesSerialFeed) {
  // Chan's parallel combine for the moments plus exact bucket-count folds
  // for the sketch: merging per-shard accumulators must agree with one
  // serial accumulator over the union stream.
  sim::Rng rng(31);
  std::vector<double> stream;
  for (int i = 0; i < 30000; ++i) {
    stream.push_back(rng.next_double() * 1e6 - 2e5);  // mixed-sign values
  }
  exp::StatAccumulator serial;
  for (double v : stream) serial.add(v);

  for (int shards : {2, 5}) {
    std::vector<exp::StatAccumulator> parts(
        static_cast<std::size_t>(shards));
    for (std::size_t i = 0; i < stream.size(); ++i) {
      parts[i % static_cast<std::size_t>(shards)].add(stream[i]);
    }
    exp::StatAccumulator merged;
    for (const auto& p : parts) merged.merge(p);
    EXPECT_EQ(merged.count(), serial.count());
    EXPECT_EQ(merged.min(), serial.min());
    EXPECT_EQ(merged.max(), serial.max());
    EXPECT_NEAR(merged.mean(), serial.mean(), 1e-9 * std::abs(serial.mean()));
    EXPECT_NEAR(merged.stddev(), serial.stddev(), 1e-9 * serial.stddev());
    // Bucket counts fold exactly, so percentiles are identical.
    for (double p : {10.0, 50.0, 90.0, 99.0}) {
      EXPECT_DOUBLE_EQ(merged.percentile(p), serial.percentile(p)) << p;
    }
  }

  // Merging into an empty accumulator is a copy; merging empty is a no-op.
  exp::StatAccumulator empty;
  exp::StatAccumulator copy;
  copy.merge(serial);
  copy.merge(empty);
  EXPECT_EQ(copy.count(), serial.count());
  EXPECT_DOUBLE_EQ(copy.mean(), serial.mean());
  EXPECT_DOUBLE_EQ(copy.percentile(50), serial.percentile(50));
}

exp::RunResult fake_result(sim::Rng* rng, bool finished = true) {
  exp::RunResult r;
  r.finished = finished;
  r.fg_makespan = static_cast<sim::Duration>(1e9 + rng->next_below(1000000));
  r.fg_util_vs_fair = 0.5 + rng->next_double() * 0.5;
  r.fg_efficiency = rng->next_double();
  r.bg_progress_rate = rng->next_double();
  r.throughput = rng->next_double() * 1e4;
  r.lat_mean = static_cast<sim::Duration>(rng->next_below(500000));
  r.lat_p99 = r.lat_mean * 3;
  r.lhp = static_cast<std::uint64_t>(rng->next_below(40));
  r.lwp = static_cast<std::uint64_t>(rng->next_below(40));
  r.irs_migrations = static_cast<std::uint64_t>(rng->next_below(10));
  r.sa_sent = static_cast<std::uint64_t>(rng->next_below(100));
  r.sa_acked = r.sa_sent / 2;
  r.sa_delay_avg = static_cast<sim::Duration>(rng->next_below(20000));
  return r;
}

TEST(SweepStats, CountsRunsAndFinished) {
  sim::Rng rng(11);
  exp::SweepStats s;
  for (int i = 0; i < 10; ++i) s.add(fake_result(&rng, i % 3 != 0));
  EXPECT_EQ(s.runs(), 10u);
  EXPECT_EQ(s.finished(), 6u);
  ASSERT_FALSE(exp::SweepStats::metric_names().empty());
  EXPECT_EQ(s.metric(0).count(), 10u);
}

TEST(SweepStats, JsonHasEveryMetricInOrder) {
  sim::Rng rng(12);
  exp::SweepStats s;
  for (int i = 0; i < 5; ++i) s.add(fake_result(&rng));
  const std::string json = exp::sweep_stats_json(s);
  EXPECT_NE(json.find("\"runs\":5"), std::string::npos);
  EXPECT_NE(json.find("\"finished\":5"), std::string::npos);
  std::size_t pos = 0;
  for (const std::string& name : exp::SweepStats::metric_names()) {
    const std::size_t at = json.find("\"" + name + "\":", pos);
    ASSERT_NE(at, std::string::npos) << name;
    EXPECT_GE(at, pos) << name << " out of order";
    pos = at;
  }
  for (const char* key : {"\"count\":", "\"mean\":", "\"stddev\":",
                          "\"min\":", "\"max\":", "\"p50\":", "\"p90\":",
                          "\"p99\":"}) {
    EXPECT_NE(json.find(key), std::string::npos) << key;
  }
}

TEST(NdjsonFold, StreamFoldMatchesDirectFoldExactly) {
  // Serialize a shard file, fold it back through the streaming parser, and
  // require the rendered stats to be byte-identical to folding the same
  // RunResults directly — round-trip serialization must not perturb any
  // aggregate.
  sim::Rng rng(13);
  std::vector<exp::RunResult> results;
  for (int i = 0; i < 40; ++i) results.push_back(fake_result(&rng, i != 7));

  std::ostringstream file;
  exp::ShardHeader h;
  h.total_runs = results.size();
  file << exp::shard_header_json(h) << '\n';
  for (std::size_t i = 0; i < results.size(); ++i) {
    file << exp::shard_line_json(i, results[i]) << '\n';
  }

  exp::SweepStats direct;
  for (const auto& r : results) direct.add(r);

  std::istringstream in(file.str());
  exp::SweepStats streamed;
  const exp::NdjsonFoldReport rep = exp::fold_ndjson_stream(in, &streamed);
  EXPECT_TRUE(rep.ok());
  EXPECT_EQ(rep.lines, 41u);
  EXPECT_EQ(rep.headers, 1u);
  EXPECT_EQ(rep.results, 40u);
  EXPECT_EQ(rep.bad_lines, 0u);
  EXPECT_EQ(exp::sweep_stats_json(streamed), exp::sweep_stats_json(direct));
  EXPECT_EQ(streamed.finished(), 39u);
}

TEST(NdjsonFold, SkipsBlankLinesReportsGarbage) {
  sim::Rng rng(14);
  std::ostringstream file;
  exp::ShardHeader h;
  h.total_runs = 2;
  file << exp::shard_header_json(h) << '\n';
  file << exp::shard_line_json(0, fake_result(&rng)) << '\n';
  file << '\n';                   // blank: ignored
  file << "{not json at all\n";   // garbage: counted + reported
  file << exp::shard_line_json(1, fake_result(&rng));  // no trailing \n: ok

  std::istringstream in(file.str());
  exp::SweepStats stats;
  const exp::NdjsonFoldReport rep = exp::fold_ndjson_stream(in, &stats);
  EXPECT_FALSE(rep.ok());
  EXPECT_EQ(rep.results, 2u);
  EXPECT_EQ(rep.bad_lines, 1u);
  ASSERT_EQ(rep.errors.size(), 1u);
  EXPECT_EQ(stats.runs(), 2u);
}

TEST(NdjsonFold, ConcatenatedShardFilesFoldAsOneStream) {
  // --stats-only feeds shard files sequentially; a concatenation with
  // multiple headers must fold cleanly, every header skipped.
  sim::Rng rng(15);
  std::ostringstream file;
  for (int shard = 0; shard < 3; ++shard) {
    exp::ShardHeader h;
    h.shard = shard;
    h.n_shards = 3;
    h.total_runs = 6;
    file << exp::shard_header_json(h) << '\n';
    for (int i = 0; i < 2; ++i) {
      file << exp::shard_line_json(
                  static_cast<std::size_t>(shard + 3 * i),
                  fake_result(&rng))
           << '\n';
    }
  }
  std::istringstream in(file.str());
  exp::SweepStats stats;
  const exp::NdjsonFoldReport rep = exp::fold_ndjson_stream(in, &stats);
  EXPECT_TRUE(rep.ok());
  EXPECT_EQ(rep.headers, 3u);
  EXPECT_EQ(rep.results, 6u);
  EXPECT_EQ(stats.runs(), 6u);
}

}  // namespace
