// Batched-dispatch equivalence and adaptive-geometry determinism.
//
// The engine's contract is that the dispatch batch size is purely a
// performance knob: for ANY batch size, every observable — dispatch order,
// clock, trace bytes, shell accounting — is identical to single pops.
// These tests drive that contract three ways:
//   * a queue-level oracle: randomized push/drain/compact churn comparing
//     pop_batch(n) drains for n in {1, 7, 64} against single pop_until on
//     the binary heap;
//   * an engine-level oracle: randomized schedule/cancel churn on every
//     backend x batch size against the binary-heap batch=1 engine, with
//     byte-identical trace records;
//   * targeted adversarial cases for the in-batch hazards (a callback
//     scheduling ahead of the scratch, nested runs, budget stops
//     mid-batch, cancels landing on scratch-resident entries).
// Plus the adaptive-wheel determinism story: retunes fire at the same
// dispatch points with the same result for every batch size, and are
// recorded on the trace.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "src/sim/engine.h"
#include "src/sim/event_queue.h"
#include "src/sim/rng.h"
#include "src/sim/trace.h"

namespace {

using namespace irs;

constexpr sim::QueueKind kAllKinds[] = {
    sim::QueueKind::kBinaryHeap,
    sim::QueueKind::kQuadHeap,
    sim::QueueKind::kHybridWheel,
};

constexpr std::size_t kBatchSizes[] = {1, 7, 64};

constexpr sim::Time kBucketNs = sim::Time{1} << sim::kDefaultWheelShift;
constexpr sim::Time kHorizonNs =
    static_cast<sim::Time>(sim::kWheelBuckets) * kBucketNs;

// ---------------------------------------------------------------------------
// Queue-level: pop_batch vs single pop_until on the binary-heap oracle
// ---------------------------------------------------------------------------

TEST(PopBatchOracle, RandomChurnMatchesSinglePopUntil) {
  for (std::uint64_t seed : {11ull, 20260808ull, 0xfeedc0deull}) {
    for (sim::QueueKind kind : kAllKinds) {
      for (std::size_t batch : kBatchSizes) {
        auto oracle = sim::make_event_queue(sim::QueueKind::kBinaryHeap);
        auto dut = sim::make_event_queue(kind);
        sim::Rng rng(seed);
        std::uint64_t seq = 0;
        sim::Time popped_floor = 0;  // push contract: when >= last popped
        std::vector<bool> dead;      // "cancelled" slots, by slot id
        std::vector<sim::QEntry> scratch(batch);

        const auto live = [](void* ctx, std::uint32_t slot, std::uint32_t) {
          auto& d = *static_cast<std::vector<bool>*>(ctx);
          return slot >= d.size() || !d[slot];
        };

        for (int round = 0; round < 200; ++round) {
          // A burst of pushes spanning every structural region.
          const std::uint64_t n = 1 + rng.next_below(30);
          for (std::uint64_t i = 0; i < n; ++i) {
            sim::Time when = popped_floor;
            switch (rng.next_below(5)) {
              case 0: when += static_cast<sim::Time>(rng.next_below(64)); break;
              case 1:
                when += static_cast<sim::Time>(rng.next_below(kBucketNs));
                break;
              case 2:
                when += static_cast<sim::Time>(rng.next_below(kHorizonNs));
                break;
              case 3:  // calendar territory (past the horizon)
                when += kHorizonNs +
                        static_cast<sim::Time>(rng.next_below(16 * kHorizonNs));
                break;
              default:  // beyond the calendar span: heap spill
                when += 40 * kHorizonNs +
                        static_cast<sim::Time>(rng.next_below(kHorizonNs));
                break;
            }
            const sim::QEntry e{when, seq,
                                static_cast<std::uint32_t>(seq & 0xffff), 0};
            ++seq;
            oracle->push(e);
            dut->push(e);
          }
          // Mark a few slots dead; occasionally compact both sides.
          for (std::uint64_t i = rng.next_below(4); i > 0; --i) {
            const std::size_t victim = rng.next_below(seq) & 0xffff;
            if (victim >= dead.size()) dead.resize(victim + 1, false);
            dead[victim] = true;
          }
          if (rng.next_below(16) == 0) {
            const std::size_t r1 = oracle->compact(live, &dead);
            const std::size_t r2 = dut->compact(live, &dead);
            EXPECT_EQ(r1, r2) << "compact removed different counts";
          }
          // Drain some prefix: batched on the DUT, single pops (the
          // equivalence definition) on the oracle, identical deadline.
          const sim::Time deadline =
              popped_floor +
              static_cast<sim::Time>(rng.next_below(4 * kHorizonNs));
          std::uint64_t want = rng.next_below(40);
          while (want > 0) {
            const std::size_t ask =
                std::min<std::uint64_t>(want, scratch.size());
            const std::size_t got =
                dut->pop_batch(deadline, scratch.data(), ask);
            for (std::size_t i = 0; i < got; ++i) {
              sim::QEntry expect;
              ASSERT_TRUE(oracle->pop_until(deadline, &expect));
              EXPECT_EQ(scratch[i].when, expect.when);
              EXPECT_EQ(scratch[i].seq, expect.seq);
              popped_floor = expect.when;
            }
            if (got < ask) {
              sim::QEntry leftover;
              EXPECT_FALSE(oracle->pop_until(deadline, &leftover))
                  << "batch stopped early but the oracle still has "
                  << leftover.when;
              break;
            }
            want -= got;
          }
          EXPECT_EQ(oracle->size(), dut->size());
        }
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Engine-level: schedule/cancel churn, every backend x batch size
// ---------------------------------------------------------------------------

/// One dispatch observed by the churn driver below.
struct Dispatch {
  sim::Time when;
  int id;
  bool operator==(const Dispatch& o) const {
    return when == o.when && id == o.id;
  }
};

/// The sim_queue_test churn shape, parameterized by batch size: random
/// schedule/cancel/reschedule traffic whose callbacks schedule zero- and
/// short-delay successors from inside dispatch — exactly the shape that
/// lands new events ahead of a half-consumed scratch.
std::vector<Dispatch> run_batch_churn(sim::QueueKind kind, std::size_t batch,
                                      std::uint64_t seed, sim::Trace* trace) {
  sim::Engine eng(kind);
  eng.set_dispatch_batch(batch);
  eng.set_trace(trace);
  sim::Rng rng(seed);
  std::vector<Dispatch> log;
  std::vector<sim::EventHandle> handles;
  int next_id = 0;

  auto random_delay = [&]() -> sim::Duration {
    switch (rng.next_below(4)) {
      case 0:  return static_cast<sim::Duration>(rng.next_below(64));
      case 1:  return static_cast<sim::Duration>(rng.next_below(kBucketNs));
      case 2:  return static_cast<sim::Duration>(rng.next_below(kHorizonNs));
      default: return static_cast<sim::Duration>(
          kHorizonNs + rng.next_below(4 * kHorizonNs));
    }
  };

  std::function<void(int)> fire = [&](int id) {
    log.push_back({eng.now(), id});
    if (trace != nullptr) {
      trace->record(eng.now(), sim::TraceKind::kUser, id,
                    static_cast<std::int32_t>(log.size()));
    }
    if (rng.next_below(3) == 0) {
      const int nid = next_id++;
      handles.push_back(eng.schedule(random_delay(), [&fire, nid] {
        fire(nid);
      }));
    }
    if (!handles.empty() && rng.next_below(4) == 0) {
      handles[rng.next_below(handles.size())].cancel();
    }
  };

  for (int round = 0; round < 40; ++round) {
    const int n = 5 + static_cast<int>(rng.next_below(25));
    for (int i = 0; i < n; ++i) {
      const int id = next_id++;
      handles.push_back(eng.schedule(random_delay(), [&fire, id] {
        fire(id);
      }));
    }
    const int cancels = static_cast<int>(rng.next_below(8));
    for (int i = 0; i < cancels && !handles.empty(); ++i) {
      handles[rng.next_below(handles.size())].cancel();
    }
    if (rng.next_below(10) == 0) {
      eng.run();
    } else {
      eng.run_until(eng.now() + random_delay() + 1);
    }
  }
  eng.run();
  EXPECT_EQ(eng.queued(), 0u);
  EXPECT_EQ(eng.cancelled_shells(), 0u);
  return log;
}

TEST(BatchOracle, ChurnByteIdenticalAcrossBackendsAndBatchSizes) {
  for (std::uint64_t seed : {5ull, 20260808ull, 0xabad1deaull}) {
    // Oracle: binary heap, batch 1 — the single-pop reference.
    sim::Trace oracle_trace(1 << 12);
    const auto oracle = run_batch_churn(sim::QueueKind::kBinaryHeap, 1, seed,
                                        &oracle_trace);
    ASSERT_FALSE(oracle.empty());
    const auto oracle_snap = oracle_trace.snapshot();

    for (sim::QueueKind kind : kAllKinds) {
      for (std::size_t batch : kBatchSizes) {
        if (kind == sim::QueueKind::kBinaryHeap && batch == 1) continue;
        sim::Trace trace(1 << 12);
        const auto got = run_batch_churn(kind, batch, seed, &trace);
        EXPECT_EQ(got, oracle) << "dispatch diverged: backend "
                               << static_cast<int>(kind) << " batch " << batch
                               << " seed " << seed;
        const auto snap = trace.snapshot();
        ASSERT_EQ(snap.size(), oracle_snap.size())
            << "trace count diverged: batch " << batch << " seed " << seed;
        for (std::size_t i = 0; i < snap.size(); ++i) {
          EXPECT_EQ(snap[i].when, oracle_snap[i].when) << "record " << i;
          EXPECT_EQ(snap[i].seq, oracle_snap[i].seq) << "record " << i;
          EXPECT_EQ(snap[i].kind, oracle_snap[i].kind) << "record " << i;
          EXPECT_EQ(snap[i].a, oracle_snap[i].a) << "record " << i;
          EXPECT_EQ(snap[i].b, oracle_snap[i].b) << "record " << i;
          EXPECT_EQ(snap[i].c, oracle_snap[i].c) << "record " << i;
          EXPECT_TRUE(snap[i].note == oracle_snap[i].note.c_str())
              << "record " << i;
        }
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Targeted in-batch hazards
// ---------------------------------------------------------------------------

class BatchDispatch : public ::testing::TestWithParam<sim::QueueKind> {};

TEST_P(BatchDispatch, InBatchSchedulesFireInGlobalOrder) {
  // 64 events land in one scratch; the first callback schedules ahead of
  // the still-unconsumed tail (t=1500, between scratch entries 1000 and
  // 2000) and at an already-passed time (clamped to now). Both must
  // interleave exactly where {when, seq} places them.
  sim::Engine eng(GetParam());
  eng.set_dispatch_batch(64);
  std::vector<std::pair<sim::Time, int>> fired;
  auto note = [&](int id) { fired.push_back({eng.now(), id}); };
  for (int i = 0; i < 64; ++i) {
    eng.schedule((i + 1) * 1000, [&note, i] { note(i); });
  }
  eng.schedule(1000, [&] {
    note(100);
    eng.schedule(500, [&note] { note(101); });   // t=1500: mid-scratch
    eng.schedule(-5, [&note] { note(102); });    // clamped to t=1000
    eng.schedule(0, [&note] { note(103); });     // t=1000, later seq
  });
  eng.run();
  ASSERT_EQ(fired.size(), 68u);
  // t=1000: event 0 (seq order), then the extra callback, then its two
  // same-timestamp children; t=1500 lands between events 0 and 1.
  EXPECT_EQ(fired[0], (std::pair<sim::Time, int>{1000, 0}));
  EXPECT_EQ(fired[1], (std::pair<sim::Time, int>{1000, 100}));
  EXPECT_EQ(fired[2], (std::pair<sim::Time, int>{1000, 102}));
  EXPECT_EQ(fired[3], (std::pair<sim::Time, int>{1000, 103}));
  EXPECT_EQ(fired[4], (std::pair<sim::Time, int>{1500, 101}));
  EXPECT_EQ(fired[5], (std::pair<sim::Time, int>{2000, 1}));
  for (int i = 2; i < 64; ++i) {
    EXPECT_EQ(fired[4 + i], (std::pair<sim::Time, int>{(i + 1) * 1000, i}));
  }
}

TEST_P(BatchDispatch, NestedRunSeesScratchTail) {
  // An event's callback starts a nested run over a window that covers
  // events already sitting in the scratch: the nested run must dispatch
  // them (the tail is flushed back to the queue), never skip or reorder.
  sim::Engine eng(GetParam());
  eng.set_dispatch_batch(64);
  std::vector<int> fired;
  for (int i = 1; i <= 10; ++i) {
    eng.schedule(i * 100, [&fired, i] { fired.push_back(i); });
  }
  eng.schedule(100, [&] {
    fired.push_back(-1);
    eng.run_until(450);  // covers events 2..4 from the same scratch
    fired.push_back(-2);
  });
  eng.run();
  EXPECT_EQ(fired, (std::vector<int>{1, -1, 2, 3, 4, -2, 5, 6, 7, 8, 9, 10}));
  EXPECT_EQ(eng.queued(), 0u);
}

TEST_P(BatchDispatch, BudgetStopMidBatchRequeuesTail) {
  sim::Engine eng(GetParam());
  eng.set_dispatch_batch(64);
  std::vector<int> fired;
  for (int i = 0; i < 100; ++i) {
    eng.schedule(i + 1, [&fired, i] { fired.push_back(i); });
  }
  const auto out = eng.run(30);  // stops inside the first scratch refill
  EXPECT_EQ(out.dispatched, 30u);
  EXPECT_TRUE(out.budget_exhausted);
  EXPECT_EQ(eng.queued(), 70u);  // tail re-queued, nothing lost
  const auto rest = eng.run();
  EXPECT_EQ(rest.dispatched, 70u);
  EXPECT_FALSE(rest.budget_exhausted);
  ASSERT_EQ(fired.size(), 100u);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(fired[i], i);
}

TEST_P(BatchDispatch, CancelHittingScratchResidentEntryIsHonoured) {
  // The first callback cancels events that were popped into the same
  // scratch refill: they must not fire, and the shell bookkeeping must
  // come back to zero (the scratch skip path decrements it).
  sim::Engine eng(GetParam());
  eng.set_dispatch_batch(64);
  std::vector<int> fired;
  std::vector<sim::EventHandle> handles;
  for (int i = 0; i < 40; ++i) {
    handles.push_back(
        eng.schedule(i + 1, [&fired, i] { fired.push_back(i); }));
  }
  eng.schedule(0, [&] {
    handles[5].cancel();
    handles[20].cancel();
    handles[39].cancel();
  });
  eng.run();
  EXPECT_EQ(fired.size(), 37u);
  EXPECT_TRUE(std::find(fired.begin(), fired.end(), 5) == fired.end());
  EXPECT_TRUE(std::find(fired.begin(), fired.end(), 20) == fired.end());
  EXPECT_TRUE(std::find(fired.begin(), fired.end(), 39) == fired.end());
  EXPECT_EQ(eng.cancelled_shells(), 0u);
  EXPECT_EQ(eng.queued(), 0u);
}

INSTANTIATE_TEST_SUITE_P(
    AllBackends, BatchDispatch, ::testing::ValuesIn(kAllKinds),
    [](const ::testing::TestParamInfo<sim::QueueKind>& info) {
      return std::string(sim::make_event_queue(info.param)->name());
    });

// ---------------------------------------------------------------------------
// Adaptive geometry: deterministic retunes, recorded on the trace
// ---------------------------------------------------------------------------

TEST(AdaptiveGeometry, RetuneNarrowsBucketsAndIsBatchInvariant) {
  // Tight 1 µs cadence: the gap EWMA settles near 1000 ns, so the first
  // retune offer at a full-drain point re-derives shift = bit_width(1000)
  // - 1 + 2 = 11 (2 µs buckets) from the default 17. The whole history —
  // when the retune fires, the resulting shift, the trace record — must
  // be identical for every batch size.
  std::vector<sim::TraceRecord> reference;
  for (std::size_t batch : kBatchSizes) {
    sim::Engine eng(sim::QueueKind::kHybridWheel);
    eng.set_dispatch_batch(batch);
    eng.set_retune_period(256);
    sim::Trace trace(1 << 10);
    eng.set_trace(&trace);
    std::uint64_t fired = 0;
    for (int i = 0; i < 512; ++i) {
      eng.schedule((i + 1) * sim::microseconds(1), [&fired] { ++fired; });
    }
    eng.run();  // drains fully: a safe retune point past the period
    EXPECT_EQ(fired, 512u);
    const sim::QueueGeometry geo = eng.queue_geometry();
    EXPECT_EQ(geo.shift, 11) << "batch " << batch;
    EXPECT_EQ(geo.bucket_ns, sim::Time{1} << 11);
    ASSERT_EQ(trace.count(sim::TraceKind::kQueueGeometry), 1u)
        << "batch " << batch;
    const auto snap = trace.snapshot();
    if (reference.empty()) {
      reference = snap;
    } else {
      ASSERT_EQ(snap.size(), reference.size()) << "batch " << batch;
      for (std::size_t i = 0; i < snap.size(); ++i) {
        EXPECT_EQ(snap[i].when, reference[i].when) << "record " << i;
        EXPECT_EQ(snap[i].seq, reference[i].seq) << "record " << i;
        EXPECT_EQ(snap[i].kind, reference[i].kind) << "record " << i;
        EXPECT_EQ(snap[i].a, reference[i].a) << "record " << i;
      }
    }
    // The retuned wheel keeps dispatching correctly at the new geometry.
    std::vector<sim::Time> after;
    for (int i = 0; i < 64; ++i) {
      eng.schedule(sim::microseconds(1 + i), [&after, &eng] {
        after.push_back(eng.now());
      });
    }
    eng.run();
    EXPECT_EQ(after.size(), 64u);
    EXPECT_TRUE(std::is_sorted(after.begin(), after.end()));
  }
}

TEST(AdaptiveGeometry, HeapBackendsDeclineAndStayAllZero) {
  for (sim::QueueKind kind :
       {sim::QueueKind::kBinaryHeap, sim::QueueKind::kQuadHeap}) {
    sim::Engine eng(kind);
    eng.set_retune_period(64);
    sim::Trace trace(1 << 8);
    eng.set_trace(&trace);
    for (int i = 0; i < 256; ++i) {
      eng.schedule((i + 1) * 1000, [] {});
    }
    eng.run();
    EXPECT_EQ(trace.count(sim::TraceKind::kQueueGeometry), 0u);
    const sim::QueueGeometry geo = eng.queue_geometry();
    EXPECT_EQ(geo.shift, 0);
    EXPECT_EQ(geo.horizon_ns, 0);
  }
}

TEST(AdaptiveGeometry, RetuneDeclinedWhileEntriesRemainQueued) {
  // A far-future event keeps the queue non-empty at every run_until
  // boundary: the wheel must keep its default geometry (no safe rollover
  // point ever occurs), and no geometry record may appear.
  sim::Engine eng(sim::QueueKind::kHybridWheel);
  eng.set_retune_period(64);
  sim::Trace trace(1 << 8);
  eng.set_trace(&trace);
  eng.schedule(sim::seconds(10), [] {});  // pins the queue non-empty
  for (int i = 0; i < 256; ++i) {
    eng.schedule((i + 1) * 1000, [] {});
  }
  eng.run_until(sim::milliseconds(1));
  EXPECT_EQ(eng.queue_geometry().shift, sim::kDefaultWheelShift);
  EXPECT_EQ(trace.count(sim::TraceKind::kQueueGeometry), 0u);
}

}  // namespace
