// Unit tests for core measurement utilities, chiefly the exact-percentile
// histogram: known quantiles of hand-built sample sets, interpolation
// between ranks, and const-correct sort-on-demand behaviour.
#include "src/core/metrics.h"

#include <gtest/gtest.h>

namespace irs::core {
namespace {

Histogram from_samples(std::initializer_list<sim::Duration> vs) {
  Histogram h;
  for (auto v : vs) h.add(v);
  return h;
}

TEST(Histogram, EmptyIsAllZero) {
  const Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.mean(), 0);
  EXPECT_EQ(h.max(), 0);
  EXPECT_EQ(h.percentile(50.0), 0);
}

TEST(Histogram, SingleSampleAtEveryPercentile) {
  const Histogram h = from_samples({42});
  for (double p : {0.0, 1.0, 50.0, 99.0, 100.0}) {
    EXPECT_EQ(h.percentile(p), 42) << "p=" << p;
  }
}

TEST(Histogram, MedianOfTwoInterpolates) {
  // Nearest-rank would return one of the endpoints; the linear-interpolated
  // convention (numpy default) gives the midpoint.
  const Histogram h = from_samples({10, 20});
  EXPECT_EQ(h.percentile(50.0), 15);
  EXPECT_EQ(h.percentile(0.0), 10);
  EXPECT_EQ(h.percentile(100.0), 20);
  EXPECT_EQ(h.percentile(25.0), 13);  // llround(10 + 0.25 * 10)
}

TEST(Histogram, KnownQuantilesOfEvenlySpacedSamples) {
  // 0, 10, ..., 90: rank = p/100 * 9.
  Histogram h;
  for (int i = 9; i >= 0; --i) h.add(10 * i);  // unsorted insertion order
  EXPECT_EQ(h.percentile(0.0), 0);
  EXPECT_EQ(h.percentile(100.0), 90);
  EXPECT_EQ(h.percentile(50.0), 45);  // rank 4.5 -> between 40 and 50
  EXPECT_EQ(h.percentile(25.0), 23);  // rank 2.25 -> llround(22.5)
  EXPECT_EQ(h.percentile(75.0), 68);  // rank 6.75 -> llround(67.5)
  EXPECT_EQ(h.percentile(99.0), 89);  // rank 8.91 -> llround(89.1)
}

TEST(Histogram, ExactRankNeedsNoInterpolation) {
  const Histogram h = from_samples({1, 2, 3, 4, 5});
  EXPECT_EQ(h.percentile(25.0), 2);  // rank exactly 1
  EXPECT_EQ(h.percentile(50.0), 3);  // rank exactly 2
  EXPECT_EQ(h.percentile(75.0), 4);  // rank exactly 3
}

TEST(Histogram, OutOfRangePercentileClamps) {
  const Histogram h = from_samples({5, 15});
  EXPECT_EQ(h.percentile(-10.0), 5);
  EXPECT_EQ(h.percentile(250.0), 15);
}

TEST(Histogram, PercentileIsConstAndSurvivesInterleavedAdds) {
  Histogram h;
  h.add(30);
  h.add(10);
  const Histogram& ch = h;  // percentile must be callable through const ref
  EXPECT_EQ(ch.percentile(100.0), 30);
  h.add(50);  // invalidates the sorted cache
  EXPECT_EQ(ch.percentile(100.0), 50);
  EXPECT_EQ(ch.percentile(50.0), 30);
  EXPECT_EQ(ch.mean(), 30);
  EXPECT_EQ(ch.max(), 50);
}

TEST(Histogram, MeanDoesNotOverflowInt64) {
  // Three samples of ~9e18 ns sum to ~2.7e19, past INT64_MAX (~9.2e18):
  // an int64 accumulator would wrap negative. The 128-bit accumulator
  // returns the exact mean.
  const sim::Duration big = 9'000'000'000'000'000'000;  // 9e18, fits int64
  const Histogram h = from_samples({big, big, big});
  EXPECT_EQ(h.mean(), big);
  // Asymmetric case: exact integer division of the 128-bit sum.
  const Histogram h2 = from_samples({big, big - 6, big - 3});
  EXPECT_EQ(h2.mean(), big - 3);
}

TEST(Histogram, ClearResets) {
  Histogram h = from_samples({7, 9});
  h.clear();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.percentile(50.0), 0);
}

TEST(Metrics, ImprovementAndGainPct) {
  EXPECT_DOUBLE_EQ(improvement_pct(200.0, 100.0), 50.0);
  EXPECT_DOUBLE_EQ(improvement_pct(0.0, 100.0), 0.0);
  EXPECT_DOUBLE_EQ(gain_pct(100.0, 150.0), 50.0);
  EXPECT_DOUBLE_EQ(gain_pct(0.0, 150.0), 0.0);
}

}  // namespace
}  // namespace irs::core
